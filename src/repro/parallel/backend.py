"""Execution backends: one sort program, simnet or real processes.

The repository's six-step sample sort can execute on two substrates:

* ``simnet`` — the deterministic virtual-time simulator (the default;
  golden-fingerprinted, fault-injectable, zero real parallelism);
* ``process`` — this module's :class:`ProcessBackend`: one OS process per
  rank, key/provenance arrays in :mod:`multiprocessing.shared_memory`
  blocks leased from a :class:`~repro.parallel.arena.SharedArena`, a
  zero-copy all-to-all through peer-addressed shm regions, and pipe-based
  collectives for the control plane.

Both produce bit-identical per-rank partitions (pinned by the
cross-backend equivalence tests against the ``local_backend`` oracle and
the simnet golden fingerprint); they differ in what the clock means —
virtual seconds there, wall seconds here.

Backend selection: :class:`~repro.core.api.SortConfig` takes
``backend="process"`` explicitly, or an ambient default installed with
:func:`use_backend` / :func:`set_default_backend` (how the experiments
CLI's ``--backend`` flag reaches every sorter an experiment builds).
Both accept a backend *instance* as well as a name since PR 9, which is
how a persistent pool is shared: ``use_backend(ProcessBackend())``
routes every sort in the scope through one warm pool instead of
spawning per call (and the scope does **not** close the instance — its
owner does).

Since PR 9 the :class:`ProcessBackend` is a **persistent worker pool**:
the rank processes are spawned on first use, parked in
:func:`~repro.parallel.worker.worker_main`'s job loop between sorts,
and fed per-job :class:`~repro.parallel.worker.JobSpec` messages over
the control pipes (:func:`~repro.parallel.collectives.dispatch_job`).
Warm state carried across jobs: the processes themselves, the arena's
shm segments (and the workers' mappings of them), and the
:class:`SplitterCache` of prior-epoch distribution fingerprints.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Protocol, Sequence

import numpy as np

from ..core.provenance import Provenance
from ..core.sorter import STEP_LABELS, RankSortOutput, SortOptions
from ..obs.context import active_capture
from ..pgxd.config import PgxdConfig
from .arena import SharedArena, ShmLease
from .chaos import RealFaultPlan, active_real_fault_plan
from .collectives import dispatch_job, send_shutdown, serve_control_plane
from .errors import (
    ControlPlaneTimeout,
    JobAbortedError,
    ParallelBackendError,
    PoolClosedError,
    WorkerCrashedError,
    WorkerFailedError,
)
from .layout import exchange_layout
from .shmsan import MUTATIONS, ShmSan, active_shm_sanitizer
from .tracing import ProgressFn, ambient_progress, merge_worker_traces
from .worker import JobSpec, WorkerReport, worker_main

#: The selectable execution substrates.
BACKENDS = ("simnet", "process")

_default_backend: "str | ExecutionBackend" = "simnet"

#: Per-call sentinel: "use the backend's configured default".
_UNSET = object()


def default_backend() -> "str | ExecutionBackend":
    """The ambient backend used when a SortConfig does not pick one.

    Either a name from :data:`BACKENDS` or a live backend instance (a
    shared pool installed with :func:`use_backend`).
    """
    return _default_backend


def set_default_backend(name: "str | ExecutionBackend") -> None:
    """Install the ambient default backend (a name or a live instance)."""
    global _default_backend
    _default_backend = _validated(name)


@contextmanager
def use_backend(name: "str | ExecutionBackend"):
    """Scope the ambient default backend (the CLI's ``--backend`` plumbing).

    Accepts a name (``"simnet"``/``"process"``) or a backend instance —
    the latter is how one persistent pool serves every sorter built in
    the scope.  Instance lifetime stays with the caller: leaving the
    scope restores the previous default but never closes the instance.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = _validated(name)
    try:
        yield
    finally:
        _default_backend = previous


def resolve_backend(
    name: "str | ExecutionBackend | None",
) -> "str | ExecutionBackend":
    """Explicit choice wins; None falls back to the ambient default."""
    return _validated(name) if name is not None else _default_backend


def _validated(name: "str | ExecutionBackend") -> "str | ExecutionBackend":
    if not isinstance(name, str):
        if hasattr(name, "sort_blocks"):
            return name
        raise ValueError(
            f"backend must be a name from {BACKENDS} or an object with "
            f"sort_blocks(), got {type(name).__name__}"
        )
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose one of {BACKENDS}")
    return name


@dataclass(frozen=True)
class RetryPolicy:
    """How the pool re-runs a job whose generation crashed under it.

    A mid-job worker death poisons the generation (survivors may be
    wedged mid-collective); with a policy attached the backend respawns
    and re-runs the *same* job — same job id, per-attempt fresh
    generation and freshly staged leases — instead of propagating the
    typed error.  Attempts within one survivor set are bounded by
    :attr:`max_attempts` with capped exponential backoff between them;
    exhaustion raises :class:`~repro.parallel.errors.JobAbortedError`
    carrying the full attempt history.

    Degradation: when :attr:`degrade_after` consecutive-job crashes
    charge to one rank (a *poisoned rank* — persistently dying, not
    transiently unlucky), the backend excludes it, re-plans the input
    over the survivor set with a fresh attempt budget, and re-sorts at
    reduced p — surfacing ``SortResult.survivors``/``recovery_rounds``
    exactly as the simnet resilient sort does.  ``degrade_after=None``
    disables degradation (retry-only).
    """

    #: Attempts allowed per survivor set before aborting (>= 1).
    max_attempts: int = 3
    #: Backoff before retry k is ``backoff_seconds * 2**(k-1)`` ...
    backoff_seconds: float = 0.05
    #: ... capped here (seconds).
    backoff_cap_seconds: float = 1.0
    #: Crashes charged to a single rank before it is declared poisoned
    #: and excluded by a survivor re-plan (None = never degrade).
    degrade_after: int | None = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0.0 or self.backoff_cap_seconds < 0.0:
            raise ValueError("backoff seconds must be >= 0")
        if self.degrade_after is not None and self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1 (or None)")

    def backoff_for(self, attempt_in_round: int) -> float:
        """Seconds to sleep before the given retry (1-based)."""
        return min(
            self.backoff_seconds * (2 ** max(attempt_in_round - 1, 0)),
            self.backoff_cap_seconds,
        )


class ExecutionBackend(Protocol):
    """What a substrate must provide to run the partitioned sort."""

    name: str

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
    ) -> "BackendRun": ...


@dataclass
class BackendRun:
    """Backend-agnostic outcome of one partitioned sort."""

    #: Per-rank outputs in the simulated sorter's shape (keys, provenance,
    #: per-step seconds — wall seconds on real backends).
    outputs: list[RankSortOutput]
    #: Final splitters the Master selected.
    splitters: np.ndarray
    #: counts_matrix[src][dst] = keys shipped src -> dst.
    counts_matrix: np.ndarray
    #: Driver-observed wall seconds for the whole run (spawn to collect).
    wall_seconds: float
    #: Max over workers of in-step wall seconds (excludes spawn overhead).
    worker_seconds: float
    #: Per-rank worker reports (process backend only; None from simnet) —
    #: carry the measured waits, peak RSS, and optional trace payloads.
    reports: list[WorkerReport] | None = None
    #: Pool job id (0 on non-pooled backends).
    job_id: int = 0
    #: Splitter-cache verdict for this job (``cold``/``hit``/``miss``/
    #: ``fallback-balance``/``fallback-forced``; None from simnet).
    splitter_cache: str | None = None
    #: Failed attempts the retry layer burned before this run succeeded
    #: (0 on the fault-free path, which keeps reports bit-identical).
    retries: int = 0
    #: One record per failed attempt (``attempt``/``error``/``rank``/
    #: ``exitcode``/``last_step``), as carried by ``JobAbortedError``.
    attempt_history: tuple = ()
    #: Original rank ids that produced this run after a survivor-degraded
    #: re-plan; None on the full-width path.  Degraded runs keep the
    #: original rank count in :attr:`outputs` with ``None`` at excluded
    #: slots, mirroring the simnet resilient sort's crashed-rank shape.
    survivors: tuple[int, ...] | None = None
    #: Survivor re-plan rounds this job needed (0 = first planning held).
    recovery_rounds: int = 0
    #: Re-planned input offsets (original-rank indexed) when the job was
    #: survivor-degraded; overrides the caller's partition offsets in
    #: :meth:`to_sort_result` because the data was re-blocked.
    input_offsets: np.ndarray | None = None

    def to_sort_result(self, input_offsets: np.ndarray):
        """Assemble the user-facing :class:`~repro.core.result.SortResult`.

        The metrics slot is filled with wall-clock accounting: per-step
        wall seconds as phase seconds, shm traffic as bytes, and the
        driver's wall time as the makespan — so ``elapsed_seconds``,
        ``step_breakdown`` and friends answer in real seconds.
        """
        from ..core.result import SortResult

        if self.input_offsets is not None:
            input_offsets = self.input_offsets
        return SortResult.from_rank_outputs(
            self.outputs, self.cluster_metrics(), input_offsets
        )

    def cluster_metrics(self):
        """Wall-clock :class:`~repro.simnet.metrics.ClusterMetrics` shim.

        With worker reports (process backend) the accounting is *measured*:
        each step's compute is its wall minus the blocking time the worker
        clocked inside collectives during that step, the recv/barrier wait
        totals are the worker's own, and peak resident memory is the
        worker process's real ``ru_maxrss``.  Without reports (the simnet
        adapter) step walls stand in for compute and waits stay zero.
        """
        from ..simnet.metrics import ClusterMetrics, ProcessMetrics

        p = len(self.outputs)
        live = [out for out in self.outputs if out is not None]
        key_itemsize = live[0].keys.dtype.itemsize if live else 8
        idx_itemsize = 4  # int32 origin indices ride the exchange
        processes = []
        remote_bytes = 0
        local_bytes = 0
        messages = 0
        for rank, out in enumerate(self.outputs):
            if out is None:
                # Survivor-degraded run: this rank was excluded as
                # poisoned; it keeps its slot (rank-aligned indices) with
                # zero traffic and the crashed flag set.
                m = ProcessMetrics(rank=rank)
                m.crashed = True
                processes.append(m)
                continue
            row = self.counts_matrix[rank]
            col = self.counts_matrix[:, rank]
            off_row = int(row.sum() - row[rank])
            off_col = int(col.sum() - col[rank])
            has_prov = len(out.provenance) > 0
            per_key = key_itemsize + (idx_itemsize if has_prov else 0)
            m = ProcessMetrics(rank=rank)
            report = self.reports[rank] if self.reports is not None else None
            if report is not None:
                for label, wall in out.step_seconds.items():
                    waited = report.step_wait_seconds.get(label, 0.0)
                    m.phase_seconds[label] = max(wall - waited, 0.0)
                m.recv_wait_seconds = report.recv_wait_seconds
                m.barrier_wait_seconds = report.barrier_wait_seconds
                m.memory.peak_resident = report.peak_rss_bytes
                m.memory.peak_total = report.peak_rss_bytes
            else:
                m.phase_seconds.update(out.step_seconds)
            m.bytes_sent = off_row * per_key
            m.bytes_received = off_col * per_key
            m.messages_sent = int(np.count_nonzero(np.delete(row, rank)))
            m.messages_received = int(np.count_nonzero(np.delete(col, rank)))
            m.finished_at = sum(out.step_seconds.values())
            processes.append(m)
            remote_bytes += m.bytes_sent
            local_bytes += int(row[rank]) * per_key
            messages += m.messages_sent
        # Retry-layer fault accounting: charge each failed attempt to the
        # rank it was attributed to.  All-zero on clean runs, so the
        # RunReport ``faults`` key stays absent and the committed run-report
        # snapshot holds bit-identical.
        for record in self.attempt_history:
            culprit = record.get("rank")
            if culprit is None or not 0 <= culprit < p:
                continue
            if record.get("error") == "ControlPlaneTimeout":
                processes[culprit].timeouts += 1
            else:
                processes[culprit].retries += 1
        return ClusterMetrics(
            processes=processes,
            makespan=self.wall_seconds,
            remote_bytes=remote_bytes,
            local_bytes=local_bytes,
            messages=messages,
        )


@dataclass
class SplitterCache:
    """Driver-side memory of committed epochs: fingerprints → splitters.

    Keyed by ``(key dtype, cluster size)``; each key holds a tiny LRU of
    ``(distribution fingerprint, splitters)`` pairs (newest last, capacity
    :attr:`capacity_per_key`), so a pool alternating between a few
    recurring datasets keeps them all warm.  The fingerprint is exact
    (sha1 over the per-rank sample bytes — see
    :func:`~repro.parallel.worker.combine_sample_fingerprint`), which is
    what makes a hit safe: matching fingerprint ⇒ the cached splitters
    are byte-equal to what fresh selection would return.
    """

    capacity_per_key: int = 4
    hits: int = 0
    misses: int = 0
    fallbacks: int = 0
    cold: int = 0
    _entries: dict[tuple[str, int], list[tuple[str, np.ndarray]]] = field(
        default_factory=dict
    )

    def candidates(
        self, dtype, size: int
    ) -> tuple[tuple[str, np.ndarray], ...]:
        return tuple(self._entries.get((np.dtype(dtype).str, size), ()))

    def commit(
        self, dtype, size: int, fingerprint: str | None, splitters
    ) -> None:
        if fingerprint is None or splitters is None:
            return
        entries = self._entries.setdefault((np.dtype(dtype).str, size), [])
        entries[:] = [e for e in entries if e[0] != fingerprint]
        entries.append((fingerprint, np.asarray(splitters).copy()))
        del entries[: -self.capacity_per_key]

    def note(self, verdict: str) -> None:
        if verdict == "hit":
            self.hits += 1
        elif verdict == "cold":
            self.cold += 1
        elif verdict == "miss":
            self.misses += 1
        else:
            self.fallbacks += 1

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "cold": self.cold,
            "entries": sum(len(v) for v in self._entries.values()),
        }


class ProcessBackend:
    """Real-parallel substrate: a persistent pool of rank processes.

    The first ``sort_blocks`` call spawns one worker per rank; the
    workers then park in their job loop and subsequent sorts are pure
    dispatch — no process spawn, no shm re-mapping (the arena pools its
    segments and the workers cache their attachments), and, when the
    :class:`SplitterCache` recognizes a job's distribution fingerprint,
    no splitter selection either.  Use as a context manager (or call
    :meth:`close`) to shut the workers down and unlink the arena;
    ``persistent=False`` restores the pre-PR-9 spawn-per-sort behaviour
    (the pool is torn down after every job).

    Crash policy: a worker death or failure *poisons the generation* —
    survivors may be wedged mid-collective with stale replies queued, so
    the whole pool is torn down with the typed error, and the next job
    transparently respawns a fresh generation (counted in
    :attr:`respawns`).  The pool itself stays usable; only :meth:`close`
    retires it (:class:`~repro.parallel.errors.PoolClosedError` after).

    ``start_method`` defaults to ``fork`` where available (cheapest spawn;
    the workers re-import nothing) and ``spawn`` elsewhere — the spec and
    worker entry are picklable, so both work.  ``timeout_seconds`` bounds
    control-plane silence, turning any stall into a typed error.

    ``sanitize`` attaches ShmSan (:mod:`repro.parallel.shmsan`): pass a
    :class:`~repro.parallel.shmsan.ShmSan` to share one across backends,
    ``True`` for a private instance (read it back from
    :attr:`sanitizer`), ``False`` to force sanitizing off, or leave the
    default ``None`` to follow the ambient
    :func:`~repro.parallel.shmsan.shm_sanitize` scope — the same
    ambient-wins convention the tracer and progress sinks use.
    ``mutate``/``mutate_rank`` seed one deliberate invariant break from
    :data:`~repro.parallel.shmsan.MUTATIONS` (test hook).
    """

    name = "process"

    def __init__(
        self,
        *,
        start_method: str | None = None,
        timeout_seconds: float = 120.0,
        phase_timeout_seconds: float | None = None,
        crash_rank: int | None = None,
        crash_stage: str = "start",
        progress: ProgressFn | None = None,
        sanitize: "ShmSan | bool | None" = None,
        mutate: str | None = None,
        mutate_rank: int = 1,
        persistent: bool = True,
        splitter_cache: "SplitterCache | bool" = True,
        force_resample: bool = False,
        cache_balance_tolerance: float = 2.0,
        chaos: RealFaultPlan | None = None,
        retry: "RetryPolicy | bool | None" = None,
    ):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.timeout_seconds = timeout_seconds
        #: Per-collective deadline (None = only the global timeout); what
        #: turns a hung-but-alive rank into a prompt, rank-attributed
        #: ControlPlaneTimeout instead of a full global stall.
        self.phase_timeout_seconds = phase_timeout_seconds
        #: Explicit chaos plan; None follows the ambient
        #: :func:`~repro.parallel.chaos.inject_real_faults` scope per job.
        self.chaos = chaos
        #: Retry policy: an instance, True for defaults, or None — which
        #: stays fail-fast *except* when a chaos plan is active (chaos
        #: without recovery would just convert planned faults into lost
        #: jobs, so an active plan arms the default policy).
        if retry is True:
            self._retry: RetryPolicy | None = RetryPolicy()
        elif retry is False:
            self._retry = None
        else:
            self._retry = retry
        self._retry_explicit = retry is not None
        self._crash_rank = crash_rank
        self._crash_stage = crash_stage
        #: Live heartbeat sink ``(rank, step, rows)``; an explicit argument
        #: wins over the ambient :func:`~repro.parallel.tracing.use_progress`.
        self._progress = progress
        if mutate is not None and mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutate!r}; choose one of {MUTATIONS}"
            )
        self._mutate = mutate
        self._mutate_rank = mutate_rank
        #: The backend-owned sanitizer (set when ``sanitize`` was an
        #: instance or ``True``); ambient resolution happens per sort.
        if isinstance(sanitize, ShmSan):
            self.sanitizer: ShmSan | None = sanitize
        elif sanitize is True:
            self.sanitizer = ShmSan()
        else:
            self.sanitizer = None
        self._follow_ambient_san = sanitize is None
        self.arena = SharedArena()
        #: Keep workers alive between sorts (the pool); False = tear the
        #: generation down after every job (spawn-per-sort).
        self.persistent = persistent
        if isinstance(splitter_cache, SplitterCache):
            self.splitter_cache: SplitterCache | None = splitter_cache
        elif splitter_cache:
            self.splitter_cache = SplitterCache()
        else:
            self.splitter_cache = None
        self._force_resample = force_resample
        self._cache_balance_tolerance = cache_balance_tolerance
        # ------------------------------------------------- pool state
        self._procs: list = []
        self._conns: list = []
        self._pool_size: int | None = None
        self._poisoned = False
        self._closed = False
        #: Worker generations spawned over the pool's lifetime.
        self.pool_spawns = 0
        #: Generations spawned to replace a crashed/failed one.
        self.respawns = 0
        #: Successfully completed jobs.
        self.jobs_completed = 0
        self._job_counter = 0
        #: Failed attempts that were retried (any recovery path).
        self.retries = 0
        #: Jobs that completed at reduced width after a rank was poisoned.
        self.degraded_jobs = 0
        #: Jobs that exhausted their retry budget (JobAbortedError raised).
        self.aborted_jobs = 0
        # close()-vs-in-flight drain state: close() during a job defers
        # teardown until the job's finally block completes it.
        self._in_flight = False
        self._close_finished = False

    # ------------------------------------------------------------ lifetime

    @property
    def pool_size(self) -> int | None:
        """Ranks in the live worker generation (None when no pool is up)."""
        return self._pool_size

    @property
    def worker_pids(self) -> list[int | None]:
        """PIDs of the live generation (tests pin pool reuse on these)."""
        return [proc.pid for proc in self._procs]

    @property
    def stats(self) -> dict:
        """Pool + cache counters for observability and the perf harness."""
        return {
            "pool_spawns": self.pool_spawns,
            "respawns": self.respawns,
            "jobs_completed": self.jobs_completed,
            "retries": self.retries,
            "degraded_jobs": self.degraded_jobs,
            "aborted_jobs": self.aborted_jobs,
            "pool_size": self._pool_size,
            "splitter_cache": (
                self.splitter_cache.stats()
                if self.splitter_cache is not None
                else None
            ),
        }

    def _spawn_pool(self, size: int) -> None:
        conns = []
        procs = []
        worker_ends = []
        for rank in range(size):
            hub_end, worker_end = self._ctx.Pipe(duplex=True)
            conns.append(hub_end)
            worker_ends.append(worker_end)
            procs.append(
                self._ctx.Process(
                    target=worker_main,
                    args=(rank, size, worker_end),
                    name=f"repro-pool-rank-{rank}",
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        for end in worker_ends:
            end.close()  # the workers own their ends now
        self._procs, self._conns, self._pool_size = procs, conns, size
        self.pool_spawns += 1
        if self._poisoned:
            self.respawns += 1
            self._poisoned = False

    def _teardown_pool(self, *, graceful: bool) -> None:
        """Retire the current generation (stop message or terminate)."""
        if not self._procs:
            return
        if graceful:
            send_shutdown(self._conns)
            for proc in self._procs:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.pid is not None:
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs, self._conns, self._pool_size = [], [], None

    def _ensure_pool(self, size: int) -> None:
        """Make a healthy ``size``-rank generation current.

        Reuses the live one when it matches; replaces it when a worker
        died between jobs (respawn-and-continue) or the job wants a
        different rank count (graceful resize).
        """
        if self._procs:
            healthy = all(proc.is_alive() for proc in self._procs)
            if healthy and self._pool_size == size:
                return
            if healthy:
                self._teardown_pool(graceful=True)  # resize
            else:
                self._poisoned = True  # a rank died while parked
                self._teardown_pool(graceful=False)
        self._spawn_pool(size)

    def close(self) -> None:
        """Retire the pool; safe to call twice, and mid-job.

        A close() that races an in-flight sort (e.g. from another
        thread's shutdown path, or a progress callback) must not yank
        shared memory out from under live workers: it marks the backend
        closed — no new jobs are accepted — and defers the actual
        teardown to the job's own cleanup, which drains gracefully.
        """
        self._closed = True
        if self._in_flight:
            return  # graceful drain: the running job finishes the close
        self._finish_close()

    def _finish_close(self) -> None:
        if self._close_finished:
            return
        self._close_finished = True
        self._teardown_pool(graceful=True)
        self.arena.close()

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- run

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
        *,
        crash_rank=_UNSET,
        crash_stage=_UNSET,
        force_resample=_UNSET,
    ) -> BackendRun:
        """Sort already-partitioned blocks, one pooled worker per block.

        Same conventions as :func:`repro.core.local_backend.local_sample_sort`
        (ascending across ranks, provenance per element) — and the same
        bits, which the equivalence tests assert.  On a persistent
        backend this is one *job*: dispatch the spec to the warm pool,
        serve its control plane, collect.  The keyword-only hooks
        override the constructor-level test knobs for this job alone
        (how the crash-mid-stream and cache-fallback tests steer a
        single job without rebuilding the pool).

        With a chaos plan active (constructor ``chaos=`` or the ambient
        :func:`~repro.parallel.chaos.inject_real_faults` scope) and/or a
        :class:`RetryPolicy` armed, a failed attempt poisons the
        generation, respawns, and re-runs the same job; a rank that
        keeps dying is dropped and the job re-planned over the survivor
        set.  Exhausting the budget raises :class:`JobAbortedError`
        carrying the full attempt history.  Without either, failures
        stay fail-fast exactly as before.
        """
        options = options or SortOptions()
        config = config or PgxdConfig()
        if self._closed:
            raise PoolClosedError(
                "sort_blocks on a closed ProcessBackend; pools are retired "
                "by close()/__exit__ and cannot be revived"
            )
        job_crash_rank = (
            self._crash_rank if crash_rank is _UNSET else crash_rank
        )
        job_crash_stage = (
            self._crash_stage if crash_stage is _UNSET else crash_stage
        )
        job_force_resample = (
            self._force_resample if force_resample is _UNSET else force_resample
        )
        if len(blocks) == 0:
            raise ValueError("need at least one block")
        blocks = [np.ascontiguousarray(b) for b in blocks]
        dtypes = {b.dtype for b in blocks}
        if len(dtypes) != 1:
            raise ParallelBackendError(
                f"process backend requires dtype-uniform blocks, got "
                f"{sorted(map(str, dtypes))}; pre-convert or use the "
                f"simnet backend"
            )

        chaos = self.chaos if self.chaos is not None else active_real_fault_plan()
        policy = self._retry
        if policy is None and chaos is not None and not self._retry_explicit:
            # Chaos without recovery would just convert planned faults
            # into lost jobs, so an active plan arms the default policy
            # (retry=False pins recovery off for fail-fast chaos tests).
            policy = RetryPolicy()
        job_id = self._job_counter
        self._job_counter += 1

        self._in_flight = True
        try:
            if policy is None:
                return self._run_job(
                    blocks,
                    options,
                    config,
                    job_id=job_id,
                    attempt=0,
                    chaos=chaos,
                    rank_ids=None,
                    crash_rank=job_crash_rank,
                    crash_stage=job_crash_stage,
                    force_resample=job_force_resample,
                )
            return self._run_with_retry(
                blocks,
                options,
                config,
                job_id=job_id,
                policy=policy,
                chaos=chaos,
                crash_rank=job_crash_rank,
                crash_stage=job_crash_stage,
                force_resample=job_force_resample,
            )
        except ParallelBackendError as exc:
            # Every failure leaves here stamped with the job it belongs
            # to; SorterPool.sort_many adds the stream index on top.
            raise exc.annotate_job(job_id=job_id)
        finally:
            self._in_flight = False
            if self._closed:
                # close() raced this job and deferred; drain now.
                self._finish_close()

    def _run_job(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions,
        config: PgxdConfig,
        *,
        job_id: int,
        attempt: int,
        chaos: "RealFaultPlan | None",
        rank_ids: tuple[int, ...] | None,
        crash_rank: int | None,
        crash_stage: str,
        force_resample: bool,
        prior_attempts: tuple = (),
    ) -> BackendRun:
        """One attempt: stage input, dispatch, serve, collect.

        ``rank_ids`` maps job slots back to original rank identities for
        degraded (survivor-width) rounds — chaos schedules and crash
        hooks always address original ranks, so the mapping rides on the
        JobSpec and the worker looks itself up before arming chaos.
        """
        size = len(blocks)
        key_dtype = blocks[0].dtype
        track = options.track_provenance
        lengths = [len(b) for b in blocks]
        n = sum(lengths)
        bounds = tuple(np.concatenate(([0], np.cumsum(lengths))).tolist())

        # An ambient obs capture turns tracing on; untraced runs skip the
        # handshake and ship no event payloads (the guard pattern).
        cap = active_capture()
        driver_counters: list[tuple[float, str, float]] = []
        if cap is not None:
            self.arena.on_sample = lambda cname, value: driver_counters.append(
                (time.perf_counter(), cname, value)  # repro: noqa[R002] — real backend: driver counter timestamps are measured data
            )

        # Sanitizer resolution: backend-owned instance wins, else follow
        # the ambient shm_sanitize() scope (unless sanitize=False pinned
        # it off).  Unsanitized sorts pay only these None checks.
        san = self.sanitizer
        if san is None and self._follow_ambient_san:
            san = active_shm_sanitizer()

        start = time.perf_counter()  # repro: noqa[R002] — real backend: the driver wall clock is the makespan
        input_lease = self.arena.lease(n, key_dtype)
        key_lease = self.arena.lease(n, key_dtype)
        index_lease = self.arena.lease(n, np.int32) if track else None
        proc_lease = self.arena.lease(n, np.int16) if track else None
        if san is not None:
            san.begin_run()
            san.register_lease("input", input_lease)
            san.register_lease("keys", key_lease)
            if index_lease is not None:
                san.register_lease("index", index_lease)
            if proc_lease is not None:
                san.register_lease("proc", proc_lease)
            if self._mutate == "double-lease":
                # Seeded invariant break: hand out a second lease aliasing
                # the key segment, as if the arena double-booked it — the
                # lease-lifetime check must flag the overlap on sight.
                san.register_lease(
                    "double-lease-alias",
                    ShmLease(name=key_lease.name, dtype=np.int32, length=n),
                )
        input_view = self.arena.view(input_lease)
        for rank, block in enumerate(blocks):
            input_view[bounds[rank] : bounds[rank + 1]] = block
        if san is not None and n:
            san.parent_access(
                input_lease, 0, n, "w", "stage-input", when="before"
            )

        candidates = (
            self.splitter_cache.candidates(key_dtype, size)
            if self.splitter_cache is not None
            else ()
        )
        spec = JobSpec(
            size=size,
            block_bounds=bounds,
            input_lease=input_lease,
            key_lease=key_lease,
            index_lease=index_lease,
            proc_lease=proc_lease,
            options=options,
            config=config,
            crash_rank=crash_rank,
            crash_stage=crash_stage,
            trace=cap is not None,
            sanitize=san is not None,
            mutate=self._mutate,
            mutate_rank=self._mutate_rank,
            job_id=job_id,
            cached_candidates=candidates,
            force_resample=force_resample,
            cache_balance_tolerance=self._cache_balance_tolerance,
            chaos=chaos,
            attempt=attempt,
            rank_ids=rank_ids,
        )

        run: BackendRun | None = None
        try:
            self._ensure_pool(size)
            dispatch_job(self._conns, spec)
            progress = (
                self._progress
                if self._progress is not None
                else ambient_progress()
            )
            try:
                reports: dict[int, WorkerReport] = serve_control_plane(
                    self._conns,
                    self._procs,
                    timeout_seconds=self.timeout_seconds,
                    phase_timeout_seconds=self.phase_timeout_seconds,
                    progress=progress,
                    san_sink=san.ingest if san is not None else None,
                    chaos=(
                        chaos.hub_state(job_id, attempt)
                        if chaos is not None
                        else None
                    ),
                )
            except WorkerCrashedError as exc:
                if san is not None:
                    # The dead rank's log was flushed at step boundaries;
                    # analyze what landed so the report covers the run up
                    # to the crash point instead of discarding it.
                    san.finish_run(
                        crashed_rank=exc.rank, crashed_step=exc.last_step
                    )
                raise
            wall = time.perf_counter() - start  # repro: noqa[R002] — real backend: the driver wall clock is the makespan
            run = self._collect(
                reports, key_lease, index_lease, proc_lease, wall, san
            )
        except BaseException:
            # Any failure poisons the generation: survivors may be wedged
            # mid-collective with stale replies queued on their pipes, so
            # they cannot safely receive another job.  Tear everything
            # down with the typed error; the next sort_blocks call
            # respawns a fresh generation (respawn-and-continue).
            self._poisoned = True
            self._teardown_pool(graceful=False)
            raise
        finally:
            self.arena.release_all()
            self.arena.on_sample = None
            if san is not None:
                san.note_release()
                if self._mutate == "stale-view" and n:
                    # Seeded invariant break: read the staged input view
                    # after release_all() handed its lease back — the
                    # stale-view check must flag the outlived view.  (The
                    # pooled segment is still mapped, so the read itself
                    # is safe; holding the view is the bug.)
                    _ = int(input_view[0])
                    san.parent_access(
                        input_lease, 0, 1, "r", "stale-input-probe",
                        when="after",
                    )
            if not self.persistent:
                self._teardown_pool(graceful=True)
        run.job_id = spec.job_id
        master_report = run.reports[0] if run.reports else None
        if master_report is not None:
            run.splitter_cache = master_report.splitter_cache
            if self.splitter_cache is not None:
                self.splitter_cache.note(master_report.splitter_cache)
                self.splitter_cache.commit(
                    key_dtype,
                    size,
                    master_report.sample_fingerprint,
                    master_report.splitters,
                )
        self.jobs_completed += 1
        if san is not None:
            san.finish_run(counts_matrix=run.counts_matrix)
        if cap is not None:
            # Assemble the per-worker payloads into one simnet-schema tracer
            # on the hub timeline (t=0 at sort start) and register it with
            # the capture exactly like a simulator session.
            tracer = merge_worker_traces(
                (r.trace for r in run.reports or [] if r.trace is not None),
                num_ranks=size,
                base_time=start,
                makespan=run.wall_seconds,
                driver_counters=driver_counters,
            )
            for record in prior_attempts:
                # Failed attempts left no worker trace (their generation
                # died); surface them as t=0 fault events on the culprit
                # rank's track so the retry history is visible per run.
                tracer.fault(
                    record["rank"] if record["rank"] is not None else 0,
                    0.0,
                    "retry",
                    detail=(
                        f"attempt {record['attempt']}: {record['error']}"
                        f" at {record['last_step']}"
                    ),
                )
            cap.adopt_session(tracer, ProcessRunHandle(run))
        return run

    def _run_with_retry(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions,
        config: PgxdConfig,
        *,
        job_id: int,
        policy: RetryPolicy,
        chaos: "RealFaultPlan | None",
        crash_rank: int | None,
        crash_stage: str,
        force_resample: bool,
    ) -> BackendRun:
        """Run one job to completion under the retry/degradation policy.

        Round 0 runs the caller's blocks at full width.  A failed
        attempt is recorded (rank, exitcode, last heartbeat step), the
        poisoned generation is respawned by the next attempt, and the
        same plan re-runs after a capped exponential backoff.  A rank
        that crashes ``policy.degrade_after`` times is dropped: the
        original input is re-planned over the survivor set with
        :func:`~repro.core.api.partition_input` and a fresh attempt
        budget, and the eventual result is expanded back to original
        width (excluded slots empty) by :meth:`_expand_degraded`.
        Exhausting a round's budget raises :class:`JobAbortedError`
        with the full attempt history.
        """
        original_p = len(blocks)
        survivors = list(range(original_p))
        attempts: list[dict] = []
        crash_counts: dict[int, int] = {}
        recovery_rounds = 0
        while True:  # repro: noqa[R008] — bounded: every re-plan shrinks the survivor set; the inner loop is capped by policy.max_attempts
            if recovery_rounds == 0:
                job_blocks: Sequence[np.ndarray] = blocks
                rank_ids: tuple[int, ...] | None = None
                round_offsets = None
                round_crash_rank = crash_rank
            else:
                # Survivor re-plan: concatenate the ORIGINAL input and
                # re-partition over the reduced width, exactly like a
                # fresh sort at p' = len(survivors).  Late import: api.py
                # imports this module, so a top-level import would cycle.
                from ..core.api import partition_input

                data = np.concatenate(blocks)
                job_blocks, round_offsets = partition_input(
                    data, len(survivors)
                )
                job_blocks = [np.ascontiguousarray(b) for b in job_blocks]
                rank_ids = tuple(survivors)
                # Crash hooks address original ranks; remap to the slot
                # the target occupies this round (None once it is gone).
                round_crash_rank = (
                    survivors.index(crash_rank)
                    if crash_rank is not None and crash_rank in survivors
                    else None
                )
            attempt_in_round = 0
            while attempt_in_round < policy.max_attempts:
                try:
                    run = self._run_job(
                        job_blocks,
                        options,
                        config,
                        job_id=job_id,
                        attempt=len(attempts),
                        chaos=chaos,
                        rank_ids=rank_ids,
                        crash_rank=round_crash_rank,
                        crash_stage=crash_stage,
                        force_resample=force_resample,
                        prior_attempts=tuple(attempts),
                    )
                except (
                    WorkerCrashedError,
                    WorkerFailedError,
                    ControlPlaneTimeout,
                ) as exc:
                    culprit = self._culprit_rank(exc, rank_ids)
                    attempts.append(
                        {
                            "attempt": len(attempts),
                            "error": type(exc).__name__,
                            "rank": culprit,
                            "exitcode": getattr(exc, "exitcode", None),
                            "last_step": getattr(exc, "last_step", None),
                        }
                    )
                    self.retries += 1
                    attempt_in_round += 1
                    if culprit is not None:
                        crash_counts[culprit] = crash_counts.get(culprit, 0) + 1
                        if (
                            policy.degrade_after is not None
                            and crash_counts[culprit] >= policy.degrade_after
                            and culprit in survivors
                            and len(survivors) > 1
                        ):
                            # Poisoned rank: drop it and re-plan over the
                            # survivors with a fresh attempt budget.
                            survivors.remove(culprit)
                            recovery_rounds += 1
                            break
                    if attempt_in_round >= policy.max_attempts:
                        self.aborted_jobs += 1
                        raise JobAbortedError(job_id, attempts) from exc
                    time.sleep(policy.backoff_for(attempt_in_round))
                else:
                    if recovery_rounds:
                        run = self._expand_degraded(
                            run,
                            tuple(survivors),
                            original_p,
                            round_offsets,
                            recovery_rounds,
                        )
                        self.degraded_jobs += 1
                    run.retries = len(attempts)
                    run.attempt_history = tuple(attempts)
                    return run

    @staticmethod
    def _culprit_rank(
        exc: ParallelBackendError, rank_ids: tuple[int, ...] | None
    ) -> int | None:
        """Original-rank identity of the failed attempt's culprit.

        Crash/failure errors name their rank outright; a phase-deadline
        timeout with exactly one rank missing from the stalled
        collective charges that rank (more than one missing is
        ambiguous — no attribution).  Slot indices from degraded rounds
        are mapped back through ``rank_ids``.
        """
        rank = getattr(exc, "rank", None)
        if rank is None:
            missing = getattr(exc, "missing_ranks", ())
            if len(missing) == 1:
                rank = missing[0]
        if rank is None:
            return None
        if rank_ids is not None:
            return rank_ids[rank] if 0 <= rank < len(rank_ids) else None
        return int(rank)

    def _expand_degraded(
        self,
        run: BackendRun,
        survivors: tuple[int, ...],
        original_p: int,
        offsets: np.ndarray,
        recovery_rounds: int,
    ) -> BackendRun:
        """Map a survivor-width run back onto the original rank space.

        Excluded slots get ``None`` outputs (SortResult renders them as
        empty partitions), the counts matrix is scattered through
        ``np.ix_`` so traffic stays attributed to original identities,
        and provenance ``origin_proc`` is remapped so global indices
        stay exact against the original concatenated input — the
        re-planned offsets ride on ``run.input_offsets`` and override
        the caller's offsets in ``to_sort_result``.
        """
        survivor_arr = np.asarray(survivors, dtype=np.int64)
        expanded_counts = np.zeros(
            (original_p, original_p), dtype=run.counts_matrix.dtype
        )
        expanded_counts[np.ix_(survivor_arr, survivor_arr)] = run.counts_matrix
        outputs: list = [None] * original_p
        reports: list = [None] * original_p
        for slot, orig in enumerate(survivors):
            out = run.outputs[slot]
            prov = out.provenance
            if prov is not None and len(prov.origin_proc):
                prov = Provenance(
                    origin_proc=survivor_arr[prov.origin_proc].astype(
                        prov.origin_proc.dtype
                    ),
                    origin_index=prov.origin_index,
                )
            outputs[orig] = replace(
                out,
                provenance=prov,
                sent_counts=expanded_counts[orig].copy(),
                received_counts=expanded_counts[:, orig].copy(),
                survivors=tuple(survivors),
                recovery_rounds=recovery_rounds,
            )
            if run.reports:
                reports[orig] = run.reports[slot]
        expanded_offsets = np.zeros(original_p, dtype=np.int64)
        expanded_offsets[survivor_arr] = np.asarray(offsets, dtype=np.int64)
        run.outputs = outputs
        if run.reports:
            run.reports = reports
        run.counts_matrix = expanded_counts
        run.survivors = tuple(survivors)
        run.recovery_rounds = recovery_rounds
        run.input_offsets = expanded_offsets
        return run

    def _collect(
        self,
        reports: dict[int, WorkerReport],
        key_lease,
        index_lease,
        proc_lease,
        wall: float,
        san: ShmSan | None = None,
    ) -> BackendRun:
        size = len(reports)
        counts_matrix = np.stack([reports[r].counts_row for r in range(size)])
        layout = exchange_layout(counts_matrix)
        keys_view = self.arena.view(key_lease)
        idx_view = self.arena.view(index_lease) if index_lease else None
        proc_view = self.arena.view(proc_lease) if proc_lease else None
        if san is not None and layout.total:
            # The driver's post-join reads of the merged regions — ordered
            # after every worker access, but recorded so the log is the
            # whole story of the segments' lifetimes.
            san.parent_access(
                key_lease, 0, layout.total, "r", "collect-keys", when="after"
            )
            if index_lease is not None:
                san.parent_access(
                    index_lease, 0, layout.total, "r", "collect-index",
                    when="after",
                )
            if proc_lease is not None:
                san.parent_access(
                    proc_lease, 0, layout.total, "r", "collect-proc",
                    when="after",
                )
        outputs = []
        for rank in range(size):
            report = reports[rank]
            lo, length = layout.region(rank)
            hi = lo + length
            keys = keys_view[lo:hi].copy()  # fresh: leases return to the pool
            if idx_view is not None:
                prov = Provenance(proc_view[lo:hi].copy(), idx_view[lo:hi].copy())
            else:
                prov = Provenance.empty()
            outputs.append(
                RankSortOutput(
                    keys=keys,
                    provenance=prov,
                    step_seconds=dict(report.step_seconds),
                    samples_sent=report.samples_sent,
                    searches=report.searches,
                    sent_counts=counts_matrix[rank].copy(),
                    received_counts=counts_matrix[:, rank].copy(),
                )
            )
        master = reports[0]
        splitters = (
            master.splitters
            if master.splitters is not None
            else outputs[0].keys[:0].copy()
        )
        worker_seconds = max(reports[r].wall_seconds for r in range(size))
        return BackendRun(
            outputs=outputs,
            splitters=splitters,
            counts_matrix=counts_matrix,
            wall_seconds=wall,
            worker_seconds=worker_seconds,
            reports=[reports[r] for r in range(size)],
        )


class ProcessRunHandle:
    """Adopted-capture runner: a finished process-backend run as a session.

    Fills the ``simulator`` slot of an obs :class:`~repro.obs.context.Session`
    for runs the real backend registered with ``adopt_session``: report
    writers duck-type against ``_ran``/``metrics()`` (and, when present,
    ``step_seconds``) and never notice they are not holding a simulator.
    """

    def __init__(self, run: BackendRun) -> None:
        self.run = run
        self._ran = True

    def metrics(self):
        return self.run.cluster_metrics()

    @property
    def step_seconds(self) -> list[dict[str, float]]:
        """Measured per-rank ``{step label: wall seconds}`` dicts."""
        return [dict(out.step_seconds) for out in self.run.outputs]


class SimnetBackend:
    """Adapter presenting the virtual-time simulator as a backend.

    Exists so callers can treat the two substrates uniformly; delegates to
    :class:`~repro.core.api.DistributedSorter` (which is where the simnet
    machinery already lives) and reshapes the result.
    """

    name = "simnet"

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
    ) -> BackendRun:
        from ..core.api import DistributedSorter, SortConfig

        sort_config = SortConfig(
            num_processors=len(blocks),
            pgxd=config or PgxdConfig(),
            options=options or SortOptions(),
        )
        result = DistributedSorter(sort_config).sort_partitioned(blocks)
        outputs = [
            RankSortOutput(
                keys=result.per_processor[r],
                provenance=result.provenance[r],
                step_seconds=result.step_seconds[r],
                sent_counts=result.counts_matrix[r].copy(),
                received_counts=result.counts_matrix[:, r].copy(),
            )
            for r in range(result.num_processors)
        ]
        return BackendRun(
            outputs=outputs,
            splitters=result.per_processor[0][:0].copy()
            if result.per_processor
            else np.empty(0),
            counts_matrix=result.counts_matrix,
            wall_seconds=result.metrics.makespan,
            worker_seconds=result.metrics.makespan,
        )


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by name (see :data:`BACKENDS`)."""
    name = _validated(name)
    return ProcessBackend() if name == "process" else SimnetBackend()


#: Every step label a backend reports (re-export for metric consumers).
__all__ = [
    "BACKENDS",
    "BackendRun",
    "ExecutionBackend",
    "ProcessBackend",
    "ProcessRunHandle",
    "RetryPolicy",
    "SimnetBackend",
    "SplitterCache",
    "STEP_LABELS",
    "default_backend",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
