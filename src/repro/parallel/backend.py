"""Execution backends: one sort program, simnet or real processes.

The repository's six-step sample sort can execute on two substrates:

* ``simnet`` — the deterministic virtual-time simulator (the default;
  golden-fingerprinted, fault-injectable, zero real parallelism);
* ``process`` — this module's :class:`ProcessBackend`: one OS process per
  rank, key/provenance arrays in :mod:`multiprocessing.shared_memory`
  blocks leased from a :class:`~repro.parallel.arena.SharedArena`, a
  zero-copy all-to-all through peer-addressed shm regions, and pipe-based
  collectives for the control plane.

Both produce bit-identical per-rank partitions (pinned by the
cross-backend equivalence tests against the ``local_backend`` oracle and
the simnet golden fingerprint); they differ in what the clock means —
virtual seconds there, wall seconds here.

Backend selection: :class:`~repro.core.api.SortConfig` takes
``backend="process"`` explicitly, or an ambient default installed with
:func:`use_backend` / :func:`set_default_backend` (how the experiments
CLI's ``--backend`` flag reaches every sorter an experiment builds).
Both accept a backend *instance* as well as a name since PR 9, which is
how a persistent pool is shared: ``use_backend(ProcessBackend())``
routes every sort in the scope through one warm pool instead of
spawning per call (and the scope does **not** close the instance — its
owner does).

Since PR 9 the :class:`ProcessBackend` is a **persistent worker pool**:
the rank processes are spawned on first use, parked in
:func:`~repro.parallel.worker.worker_main`'s job loop between sorts,
and fed per-job :class:`~repro.parallel.worker.JobSpec` messages over
the control pipes (:func:`~repro.parallel.collectives.dispatch_job`).
Warm state carried across jobs: the processes themselves, the arena's
shm segments (and the workers' mappings of them), and the
:class:`SplitterCache` of prior-epoch distribution fingerprints.
"""

from __future__ import annotations

import multiprocessing
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from ..core.provenance import Provenance
from ..core.sorter import STEP_LABELS, RankSortOutput, SortOptions
from ..obs.context import active_capture
from ..pgxd.config import PgxdConfig
from .arena import SharedArena, ShmLease
from .collectives import dispatch_job, send_shutdown, serve_control_plane
from .errors import ParallelBackendError, PoolClosedError, WorkerCrashedError
from .layout import exchange_layout
from .shmsan import MUTATIONS, ShmSan, active_shm_sanitizer
from .tracing import ProgressFn, ambient_progress, merge_worker_traces
from .worker import JobSpec, WorkerReport, worker_main

#: The selectable execution substrates.
BACKENDS = ("simnet", "process")

_default_backend: "str | ExecutionBackend" = "simnet"

#: Per-call sentinel: "use the backend's configured default".
_UNSET = object()


def default_backend() -> "str | ExecutionBackend":
    """The ambient backend used when a SortConfig does not pick one.

    Either a name from :data:`BACKENDS` or a live backend instance (a
    shared pool installed with :func:`use_backend`).
    """
    return _default_backend


def set_default_backend(name: "str | ExecutionBackend") -> None:
    """Install the ambient default backend (a name or a live instance)."""
    global _default_backend
    _default_backend = _validated(name)


@contextmanager
def use_backend(name: "str | ExecutionBackend"):
    """Scope the ambient default backend (the CLI's ``--backend`` plumbing).

    Accepts a name (``"simnet"``/``"process"``) or a backend instance —
    the latter is how one persistent pool serves every sorter built in
    the scope.  Instance lifetime stays with the caller: leaving the
    scope restores the previous default but never closes the instance.
    """
    global _default_backend
    previous = _default_backend
    _default_backend = _validated(name)
    try:
        yield
    finally:
        _default_backend = previous


def resolve_backend(
    name: "str | ExecutionBackend | None",
) -> "str | ExecutionBackend":
    """Explicit choice wins; None falls back to the ambient default."""
    return _validated(name) if name is not None else _default_backend


def _validated(name: "str | ExecutionBackend") -> "str | ExecutionBackend":
    if not isinstance(name, str):
        if hasattr(name, "sort_blocks"):
            return name
        raise ValueError(
            f"backend must be a name from {BACKENDS} or an object with "
            f"sort_blocks(), got {type(name).__name__}"
        )
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; choose one of {BACKENDS}")
    return name


class ExecutionBackend(Protocol):
    """What a substrate must provide to run the partitioned sort."""

    name: str

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
    ) -> "BackendRun": ...


@dataclass
class BackendRun:
    """Backend-agnostic outcome of one partitioned sort."""

    #: Per-rank outputs in the simulated sorter's shape (keys, provenance,
    #: per-step seconds — wall seconds on real backends).
    outputs: list[RankSortOutput]
    #: Final splitters the Master selected.
    splitters: np.ndarray
    #: counts_matrix[src][dst] = keys shipped src -> dst.
    counts_matrix: np.ndarray
    #: Driver-observed wall seconds for the whole run (spawn to collect).
    wall_seconds: float
    #: Max over workers of in-step wall seconds (excludes spawn overhead).
    worker_seconds: float
    #: Per-rank worker reports (process backend only; None from simnet) —
    #: carry the measured waits, peak RSS, and optional trace payloads.
    reports: list[WorkerReport] | None = None
    #: Pool job id (0 on non-pooled backends).
    job_id: int = 0
    #: Splitter-cache verdict for this job (``cold``/``hit``/``miss``/
    #: ``fallback-balance``/``fallback-forced``; None from simnet).
    splitter_cache: str | None = None

    def to_sort_result(self, input_offsets: np.ndarray):
        """Assemble the user-facing :class:`~repro.core.result.SortResult`.

        The metrics slot is filled with wall-clock accounting: per-step
        wall seconds as phase seconds, shm traffic as bytes, and the
        driver's wall time as the makespan — so ``elapsed_seconds``,
        ``step_breakdown`` and friends answer in real seconds.
        """
        from ..core.result import SortResult

        return SortResult.from_rank_outputs(
            self.outputs, self.cluster_metrics(), input_offsets
        )

    def cluster_metrics(self):
        """Wall-clock :class:`~repro.simnet.metrics.ClusterMetrics` shim.

        With worker reports (process backend) the accounting is *measured*:
        each step's compute is its wall minus the blocking time the worker
        clocked inside collectives during that step, the recv/barrier wait
        totals are the worker's own, and peak resident memory is the
        worker process's real ``ru_maxrss``.  Without reports (the simnet
        adapter) step walls stand in for compute and waits stay zero.
        """
        from ..simnet.metrics import ClusterMetrics, ProcessMetrics

        p = len(self.outputs)
        key_itemsize = (
            self.outputs[0].keys.dtype.itemsize if p else 8
        )
        idx_itemsize = 4  # int32 origin indices ride the exchange
        processes = []
        remote_bytes = 0
        local_bytes = 0
        messages = 0
        for rank, out in enumerate(self.outputs):
            row = self.counts_matrix[rank]
            col = self.counts_matrix[:, rank]
            off_row = int(row.sum() - row[rank])
            off_col = int(col.sum() - col[rank])
            has_prov = len(out.provenance) > 0
            per_key = key_itemsize + (idx_itemsize if has_prov else 0)
            m = ProcessMetrics(rank=rank)
            report = self.reports[rank] if self.reports is not None else None
            if report is not None:
                for label, wall in out.step_seconds.items():
                    waited = report.step_wait_seconds.get(label, 0.0)
                    m.phase_seconds[label] = max(wall - waited, 0.0)
                m.recv_wait_seconds = report.recv_wait_seconds
                m.barrier_wait_seconds = report.barrier_wait_seconds
                m.memory.peak_resident = report.peak_rss_bytes
                m.memory.peak_total = report.peak_rss_bytes
            else:
                m.phase_seconds.update(out.step_seconds)
            m.bytes_sent = off_row * per_key
            m.bytes_received = off_col * per_key
            m.messages_sent = int(np.count_nonzero(np.delete(row, rank)))
            m.messages_received = int(np.count_nonzero(np.delete(col, rank)))
            m.finished_at = sum(out.step_seconds.values())
            processes.append(m)
            remote_bytes += m.bytes_sent
            local_bytes += int(row[rank]) * per_key
            messages += m.messages_sent
        return ClusterMetrics(
            processes=processes,
            makespan=self.wall_seconds,
            remote_bytes=remote_bytes,
            local_bytes=local_bytes,
            messages=messages,
        )


@dataclass
class SplitterCache:
    """Driver-side memory of committed epochs: fingerprints → splitters.

    Keyed by ``(key dtype, cluster size)``; each key holds a tiny LRU of
    ``(distribution fingerprint, splitters)`` pairs (newest last, capacity
    :attr:`capacity_per_key`), so a pool alternating between a few
    recurring datasets keeps them all warm.  The fingerprint is exact
    (sha1 over the per-rank sample bytes — see
    :func:`~repro.parallel.worker.combine_sample_fingerprint`), which is
    what makes a hit safe: matching fingerprint ⇒ the cached splitters
    are byte-equal to what fresh selection would return.
    """

    capacity_per_key: int = 4
    hits: int = 0
    misses: int = 0
    fallbacks: int = 0
    cold: int = 0
    _entries: dict[tuple[str, int], list[tuple[str, np.ndarray]]] = field(
        default_factory=dict
    )

    def candidates(
        self, dtype, size: int
    ) -> tuple[tuple[str, np.ndarray], ...]:
        return tuple(self._entries.get((np.dtype(dtype).str, size), ()))

    def commit(
        self, dtype, size: int, fingerprint: str | None, splitters
    ) -> None:
        if fingerprint is None or splitters is None:
            return
        entries = self._entries.setdefault((np.dtype(dtype).str, size), [])
        entries[:] = [e for e in entries if e[0] != fingerprint]
        entries.append((fingerprint, np.asarray(splitters).copy()))
        del entries[: -self.capacity_per_key]

    def note(self, verdict: str) -> None:
        if verdict == "hit":
            self.hits += 1
        elif verdict == "cold":
            self.cold += 1
        elif verdict == "miss":
            self.misses += 1
        else:
            self.fallbacks += 1

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "cold": self.cold,
            "entries": sum(len(v) for v in self._entries.values()),
        }


class ProcessBackend:
    """Real-parallel substrate: a persistent pool of rank processes.

    The first ``sort_blocks`` call spawns one worker per rank; the
    workers then park in their job loop and subsequent sorts are pure
    dispatch — no process spawn, no shm re-mapping (the arena pools its
    segments and the workers cache their attachments), and, when the
    :class:`SplitterCache` recognizes a job's distribution fingerprint,
    no splitter selection either.  Use as a context manager (or call
    :meth:`close`) to shut the workers down and unlink the arena;
    ``persistent=False`` restores the pre-PR-9 spawn-per-sort behaviour
    (the pool is torn down after every job).

    Crash policy: a worker death or failure *poisons the generation* —
    survivors may be wedged mid-collective with stale replies queued, so
    the whole pool is torn down with the typed error, and the next job
    transparently respawns a fresh generation (counted in
    :attr:`respawns`).  The pool itself stays usable; only :meth:`close`
    retires it (:class:`~repro.parallel.errors.PoolClosedError` after).

    ``start_method`` defaults to ``fork`` where available (cheapest spawn;
    the workers re-import nothing) and ``spawn`` elsewhere — the spec and
    worker entry are picklable, so both work.  ``timeout_seconds`` bounds
    control-plane silence, turning any stall into a typed error.

    ``sanitize`` attaches ShmSan (:mod:`repro.parallel.shmsan`): pass a
    :class:`~repro.parallel.shmsan.ShmSan` to share one across backends,
    ``True`` for a private instance (read it back from
    :attr:`sanitizer`), ``False`` to force sanitizing off, or leave the
    default ``None`` to follow the ambient
    :func:`~repro.parallel.shmsan.shm_sanitize` scope — the same
    ambient-wins convention the tracer and progress sinks use.
    ``mutate``/``mutate_rank`` seed one deliberate invariant break from
    :data:`~repro.parallel.shmsan.MUTATIONS` (test hook).
    """

    name = "process"

    def __init__(
        self,
        *,
        start_method: str | None = None,
        timeout_seconds: float = 120.0,
        crash_rank: int | None = None,
        crash_stage: str = "start",
        progress: ProgressFn | None = None,
        sanitize: "ShmSan | bool | None" = None,
        mutate: str | None = None,
        mutate_rank: int = 1,
        persistent: bool = True,
        splitter_cache: "SplitterCache | bool" = True,
        force_resample: bool = False,
        cache_balance_tolerance: float = 2.0,
    ):
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.timeout_seconds = timeout_seconds
        self._crash_rank = crash_rank
        self._crash_stage = crash_stage
        #: Live heartbeat sink ``(rank, step, rows)``; an explicit argument
        #: wins over the ambient :func:`~repro.parallel.tracing.use_progress`.
        self._progress = progress
        if mutate is not None and mutate not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutate!r}; choose one of {MUTATIONS}"
            )
        self._mutate = mutate
        self._mutate_rank = mutate_rank
        #: The backend-owned sanitizer (set when ``sanitize`` was an
        #: instance or ``True``); ambient resolution happens per sort.
        if isinstance(sanitize, ShmSan):
            self.sanitizer: ShmSan | None = sanitize
        elif sanitize is True:
            self.sanitizer = ShmSan()
        else:
            self.sanitizer = None
        self._follow_ambient_san = sanitize is None
        self.arena = SharedArena()
        #: Keep workers alive between sorts (the pool); False = tear the
        #: generation down after every job (spawn-per-sort).
        self.persistent = persistent
        if isinstance(splitter_cache, SplitterCache):
            self.splitter_cache: SplitterCache | None = splitter_cache
        elif splitter_cache:
            self.splitter_cache = SplitterCache()
        else:
            self.splitter_cache = None
        self._force_resample = force_resample
        self._cache_balance_tolerance = cache_balance_tolerance
        # ------------------------------------------------- pool state
        self._procs: list = []
        self._conns: list = []
        self._pool_size: int | None = None
        self._poisoned = False
        self._closed = False
        #: Worker generations spawned over the pool's lifetime.
        self.pool_spawns = 0
        #: Generations spawned to replace a crashed/failed one.
        self.respawns = 0
        #: Successfully completed jobs.
        self.jobs_completed = 0
        self._job_counter = 0

    # ------------------------------------------------------------ lifetime

    @property
    def pool_size(self) -> int | None:
        """Ranks in the live worker generation (None when no pool is up)."""
        return self._pool_size

    @property
    def worker_pids(self) -> list[int | None]:
        """PIDs of the live generation (tests pin pool reuse on these)."""
        return [proc.pid for proc in self._procs]

    @property
    def stats(self) -> dict:
        """Pool + cache counters for observability and the perf harness."""
        return {
            "pool_spawns": self.pool_spawns,
            "respawns": self.respawns,
            "jobs_completed": self.jobs_completed,
            "pool_size": self._pool_size,
            "splitter_cache": (
                self.splitter_cache.stats()
                if self.splitter_cache is not None
                else None
            ),
        }

    def _spawn_pool(self, size: int) -> None:
        conns = []
        procs = []
        worker_ends = []
        for rank in range(size):
            hub_end, worker_end = self._ctx.Pipe(duplex=True)
            conns.append(hub_end)
            worker_ends.append(worker_end)
            procs.append(
                self._ctx.Process(
                    target=worker_main,
                    args=(rank, size, worker_end),
                    name=f"repro-pool-rank-{rank}",
                    daemon=True,
                )
            )
        for proc in procs:
            proc.start()
        for end in worker_ends:
            end.close()  # the workers own their ends now
        self._procs, self._conns, self._pool_size = procs, conns, size
        self.pool_spawns += 1
        if self._poisoned:
            self.respawns += 1
            self._poisoned = False

    def _teardown_pool(self, *, graceful: bool) -> None:
        """Retire the current generation (stop message or terminate)."""
        if not self._procs:
            return
        if graceful:
            send_shutdown(self._conns)
            for proc in self._procs:
                proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.pid is not None:
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs, self._conns, self._pool_size = [], [], None

    def _ensure_pool(self, size: int) -> None:
        """Make a healthy ``size``-rank generation current.

        Reuses the live one when it matches; replaces it when a worker
        died between jobs (respawn-and-continue) or the job wants a
        different rank count (graceful resize).
        """
        if self._procs:
            healthy = all(proc.is_alive() for proc in self._procs)
            if healthy and self._pool_size == size:
                return
            if healthy:
                self._teardown_pool(graceful=True)  # resize
            else:
                self._poisoned = True  # a rank died while parked
                self._teardown_pool(graceful=False)
        self._spawn_pool(size)

    def close(self) -> None:
        self._teardown_pool(graceful=True)
        self.arena.close()
        self._closed = True

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------------- run

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
        *,
        crash_rank=_UNSET,
        crash_stage=_UNSET,
        force_resample=_UNSET,
    ) -> BackendRun:
        """Sort already-partitioned blocks, one pooled worker per block.

        Same conventions as :func:`repro.core.local_backend.local_sample_sort`
        (ascending across ranks, provenance per element) — and the same
        bits, which the equivalence tests assert.  On a persistent
        backend this is one *job*: dispatch the spec to the warm pool,
        serve its control plane, collect.  The keyword-only hooks
        override the constructor-level test knobs for this job alone
        (how the crash-mid-stream and cache-fallback tests steer a
        single job without rebuilding the pool).
        """
        options = options or SortOptions()
        config = config or PgxdConfig()
        if self._closed:
            raise PoolClosedError(
                "sort_blocks on a closed ProcessBackend; pools are retired "
                "by close()/__exit__ and cannot be revived"
            )
        job_crash_rank = (
            self._crash_rank if crash_rank is _UNSET else crash_rank
        )
        job_crash_stage = (
            self._crash_stage if crash_stage is _UNSET else crash_stage
        )
        job_force_resample = (
            self._force_resample if force_resample is _UNSET else force_resample
        )
        size = len(blocks)
        if size == 0:
            raise ValueError("need at least one block")
        blocks = [np.ascontiguousarray(b) for b in blocks]
        dtypes = {b.dtype for b in blocks}
        if len(dtypes) != 1:
            raise ParallelBackendError(
                f"process backend requires dtype-uniform blocks, got "
                f"{sorted(map(str, dtypes))}; pre-convert or use the "
                f"simnet backend"
            )
        (key_dtype,) = dtypes
        track = options.track_provenance
        lengths = [len(b) for b in blocks]
        n = sum(lengths)
        bounds = tuple(np.concatenate(([0], np.cumsum(lengths))).tolist())

        # An ambient obs capture turns tracing on; untraced runs skip the
        # handshake and ship no event payloads (the guard pattern).
        cap = active_capture()
        driver_counters: list[tuple[float, str, float]] = []
        if cap is not None:
            self.arena.on_sample = lambda cname, value: driver_counters.append(
                (time.perf_counter(), cname, value)  # repro: noqa[R002] — real backend: driver counter timestamps are measured data
            )

        # Sanitizer resolution: backend-owned instance wins, else follow
        # the ambient shm_sanitize() scope (unless sanitize=False pinned
        # it off).  Unsanitized sorts pay only these None checks.
        san = self.sanitizer
        if san is None and self._follow_ambient_san:
            san = active_shm_sanitizer()

        start = time.perf_counter()  # repro: noqa[R002] — real backend: the driver wall clock is the makespan
        input_lease = self.arena.lease(n, key_dtype)
        key_lease = self.arena.lease(n, key_dtype)
        index_lease = self.arena.lease(n, np.int32) if track else None
        proc_lease = self.arena.lease(n, np.int16) if track else None
        if san is not None:
            san.begin_run()
            san.register_lease("input", input_lease)
            san.register_lease("keys", key_lease)
            if index_lease is not None:
                san.register_lease("index", index_lease)
            if proc_lease is not None:
                san.register_lease("proc", proc_lease)
            if self._mutate == "double-lease":
                # Seeded invariant break: hand out a second lease aliasing
                # the key segment, as if the arena double-booked it — the
                # lease-lifetime check must flag the overlap on sight.
                san.register_lease(
                    "double-lease-alias",
                    ShmLease(name=key_lease.name, dtype=np.int32, length=n),
                )
        input_view = self.arena.view(input_lease)
        for rank, block in enumerate(blocks):
            input_view[bounds[rank] : bounds[rank + 1]] = block
        if san is not None and n:
            san.parent_access(
                input_lease, 0, n, "w", "stage-input", when="before"
            )

        candidates = (
            self.splitter_cache.candidates(key_dtype, size)
            if self.splitter_cache is not None
            else ()
        )
        spec = JobSpec(
            size=size,
            block_bounds=bounds,
            input_lease=input_lease,
            key_lease=key_lease,
            index_lease=index_lease,
            proc_lease=proc_lease,
            options=options,
            config=config,
            crash_rank=job_crash_rank,
            crash_stage=job_crash_stage,
            trace=cap is not None,
            sanitize=san is not None,
            mutate=self._mutate,
            mutate_rank=self._mutate_rank,
            job_id=self._job_counter,
            cached_candidates=candidates,
            force_resample=job_force_resample,
            cache_balance_tolerance=self._cache_balance_tolerance,
        )
        self._job_counter += 1

        run: BackendRun | None = None
        try:
            self._ensure_pool(size)
            dispatch_job(self._conns, spec)
            progress = (
                self._progress
                if self._progress is not None
                else ambient_progress()
            )
            try:
                reports: dict[int, WorkerReport] = serve_control_plane(
                    self._conns,
                    self._procs,
                    timeout_seconds=self.timeout_seconds,
                    progress=progress,
                    san_sink=san.ingest if san is not None else None,
                )
            except WorkerCrashedError as exc:
                if san is not None:
                    # The dead rank's log was flushed at step boundaries;
                    # analyze what landed so the report covers the run up
                    # to the crash point instead of discarding it.
                    san.finish_run(
                        crashed_rank=exc.rank, crashed_step=exc.last_step
                    )
                raise
            wall = time.perf_counter() - start  # repro: noqa[R002] — real backend: the driver wall clock is the makespan
            run = self._collect(
                reports, key_lease, index_lease, proc_lease, wall, san
            )
        except BaseException:
            # Any failure poisons the generation: survivors may be wedged
            # mid-collective with stale replies queued on their pipes, so
            # they cannot safely receive another job.  Tear everything
            # down with the typed error; the next sort_blocks call
            # respawns a fresh generation (respawn-and-continue).
            self._poisoned = True
            self._teardown_pool(graceful=False)
            raise
        finally:
            self.arena.release_all()
            self.arena.on_sample = None
            if san is not None:
                san.note_release()
                if self._mutate == "stale-view" and n:
                    # Seeded invariant break: read the staged input view
                    # after release_all() handed its lease back — the
                    # stale-view check must flag the outlived view.  (The
                    # pooled segment is still mapped, so the read itself
                    # is safe; holding the view is the bug.)
                    _ = int(input_view[0])
                    san.parent_access(
                        input_lease, 0, 1, "r", "stale-input-probe",
                        when="after",
                    )
            if not self.persistent:
                self._teardown_pool(graceful=True)
        run.job_id = spec.job_id
        master_report = run.reports[0] if run.reports else None
        if master_report is not None:
            run.splitter_cache = master_report.splitter_cache
            if self.splitter_cache is not None:
                self.splitter_cache.note(master_report.splitter_cache)
                self.splitter_cache.commit(
                    key_dtype,
                    size,
                    master_report.sample_fingerprint,
                    master_report.splitters,
                )
        self.jobs_completed += 1
        if san is not None:
            san.finish_run(counts_matrix=run.counts_matrix)
        if cap is not None:
            # Assemble the per-worker payloads into one simnet-schema tracer
            # on the hub timeline (t=0 at sort start) and register it with
            # the capture exactly like a simulator session.
            tracer = merge_worker_traces(
                (r.trace for r in run.reports or [] if r.trace is not None),
                num_ranks=size,
                base_time=start,
                makespan=run.wall_seconds,
                driver_counters=driver_counters,
            )
            cap.adopt_session(tracer, ProcessRunHandle(run))
        return run

    def _collect(
        self,
        reports: dict[int, WorkerReport],
        key_lease,
        index_lease,
        proc_lease,
        wall: float,
        san: ShmSan | None = None,
    ) -> BackendRun:
        size = len(reports)
        counts_matrix = np.stack([reports[r].counts_row for r in range(size)])
        layout = exchange_layout(counts_matrix)
        keys_view = self.arena.view(key_lease)
        idx_view = self.arena.view(index_lease) if index_lease else None
        proc_view = self.arena.view(proc_lease) if proc_lease else None
        if san is not None and layout.total:
            # The driver's post-join reads of the merged regions — ordered
            # after every worker access, but recorded so the log is the
            # whole story of the segments' lifetimes.
            san.parent_access(
                key_lease, 0, layout.total, "r", "collect-keys", when="after"
            )
            if index_lease is not None:
                san.parent_access(
                    index_lease, 0, layout.total, "r", "collect-index",
                    when="after",
                )
            if proc_lease is not None:
                san.parent_access(
                    proc_lease, 0, layout.total, "r", "collect-proc",
                    when="after",
                )
        outputs = []
        for rank in range(size):
            report = reports[rank]
            lo, length = layout.region(rank)
            hi = lo + length
            keys = keys_view[lo:hi].copy()  # fresh: leases return to the pool
            if idx_view is not None:
                prov = Provenance(proc_view[lo:hi].copy(), idx_view[lo:hi].copy())
            else:
                prov = Provenance.empty()
            outputs.append(
                RankSortOutput(
                    keys=keys,
                    provenance=prov,
                    step_seconds=dict(report.step_seconds),
                    samples_sent=report.samples_sent,
                    searches=report.searches,
                    sent_counts=counts_matrix[rank].copy(),
                    received_counts=counts_matrix[:, rank].copy(),
                )
            )
        master = reports[0]
        splitters = (
            master.splitters
            if master.splitters is not None
            else outputs[0].keys[:0].copy()
        )
        worker_seconds = max(reports[r].wall_seconds for r in range(size))
        return BackendRun(
            outputs=outputs,
            splitters=splitters,
            counts_matrix=counts_matrix,
            wall_seconds=wall,
            worker_seconds=worker_seconds,
            reports=[reports[r] for r in range(size)],
        )


class ProcessRunHandle:
    """Adopted-capture runner: a finished process-backend run as a session.

    Fills the ``simulator`` slot of an obs :class:`~repro.obs.context.Session`
    for runs the real backend registered with ``adopt_session``: report
    writers duck-type against ``_ran``/``metrics()`` (and, when present,
    ``step_seconds``) and never notice they are not holding a simulator.
    """

    def __init__(self, run: BackendRun) -> None:
        self.run = run
        self._ran = True

    def metrics(self):
        return self.run.cluster_metrics()

    @property
    def step_seconds(self) -> list[dict[str, float]]:
        """Measured per-rank ``{step label: wall seconds}`` dicts."""
        return [dict(out.step_seconds) for out in self.run.outputs]


class SimnetBackend:
    """Adapter presenting the virtual-time simulator as a backend.

    Exists so callers can treat the two substrates uniformly; delegates to
    :class:`~repro.core.api.DistributedSorter` (which is where the simnet
    machinery already lives) and reshapes the result.
    """

    name = "simnet"

    def sort_blocks(
        self,
        blocks: Sequence[np.ndarray],
        options: SortOptions | None = None,
        config: PgxdConfig | None = None,
    ) -> BackendRun:
        from ..core.api import DistributedSorter, SortConfig

        sort_config = SortConfig(
            num_processors=len(blocks),
            pgxd=config or PgxdConfig(),
            options=options or SortOptions(),
        )
        result = DistributedSorter(sort_config).sort_partitioned(blocks)
        outputs = [
            RankSortOutput(
                keys=result.per_processor[r],
                provenance=result.provenance[r],
                step_seconds=result.step_seconds[r],
                sent_counts=result.counts_matrix[r].copy(),
                received_counts=result.counts_matrix[:, r].copy(),
            )
            for r in range(result.num_processors)
        ]
        return BackendRun(
            outputs=outputs,
            splitters=result.per_processor[0][:0].copy()
            if result.per_processor
            else np.empty(0),
            counts_matrix=result.counts_matrix,
            wall_seconds=result.metrics.makespan,
            worker_seconds=result.metrics.makespan,
        )


def get_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by name (see :data:`BACKENDS`)."""
    name = _validated(name)
    return ProcessBackend() if name == "process" else SimnetBackend()


#: Every step label a backend reports (re-export for metric consumers).
__all__ = [
    "BACKENDS",
    "BackendRun",
    "ExecutionBackend",
    "ProcessBackend",
    "ProcessRunHandle",
    "SimnetBackend",
    "SplitterCache",
    "STEP_LABELS",
    "default_backend",
    "get_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
