"""The per-rank worker loop of the multiprocess backend.

One process per rank runs :func:`worker_main` — since PR 9 a *persistent
job loop*: the worker blocks on the control pipe for the next
:class:`JobSpec`, resets its per-job state (collective sequence, ShmSan
epoch clock, tracer), executes the paper's six steps over real OS
parallelism, reports, and loops until the driver sends shutdown.  The
step implementations are the same as the simulated sorter and the
in-process reference backend (regular sampling, Master splitter
selection, the investigator, the flat k-way merge), so the produced
partitions are **bit-identical** to both.

Data plane (all shared memory, described by a :class:`JobSpec`):

* the unsorted input lives in one shm block, rank ``r`` reading
  ``input[bounds[r]:bounds[r+1]]``;
* the step-5 exchange writes *directly into the receivers' regions* of a
  second shm block: the allgathered counts matrix fixes every (src, dst)
  run's offset, the regions are disjoint, so every rank writes its
  outgoing runs concurrently with zero copies through the control plane
  and zero locks — a barrier separates the writes from the merges;
* step 6 merges the rank's own region with the flat k-way kernel and
  stores the result (keys + provenance) back over that region, where the
  driver collects it.

Control plane (pickled over one pipe per rank, via the hub in
:mod:`repro.parallel.collectives`): the sample gather, the splitter
broadcast, the counts allgather, and the pre/post-exchange barriers —
bytes proportional to ``p``, never to ``n``.

Timing here is *wall-clock* (``time.perf_counter``), which is the whole
point of this backend; the simulated path keeps its virtual clock.

Observability: every worker heartbeats the hub at each step boundary
(always on — six tiny pipe messages that power the crash detector's
which-step-died diagnostics) and, when the parent requested tracing
(``job.trace``), records a :class:`~repro.parallel.tracing.WorkerTrace`
— clock-offset handshake, per-step windows, collective wait spans, one
flow per (src, dst) shm write with bytes and destination offsets, and
counter samples — shipped home on the :class:`WorkerReport` and merged
on the parent into the simnet-schema tracer.

Splitter/sample cache (the Histogram-Sort-with-Sampling idea from
PAPERS.md, adapted to exactness): the driver ships prior-epoch
``(fingerprint, splitters)`` candidates on the :class:`JobSpec`.  Every
rank still draws its regular samples, but instead of gathering the
sample *arrays* it gathers a per-rank sample digest plus one cheap
histogram per candidate; the Master combines the digests into the job's
distribution fingerprint and, on an exact match with a balanced
histogram, broadcasts the candidate index — the splitter selection is
skipped entirely.  Because the fingerprint hashes the exact sample
bytes, a cache hit *guarantees* the cached splitters equal what fresh
selection would produce, so the output stays bit-identical to the
oracle on every path; any miss, imbalance, or forced fallback rejoins
the classic gather-samples/bcast-splitters path.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection

import numpy as np

from ..core.investigator import compute_rank_cuts, slices_from_cuts
from ..core.packsort import packed_stable_sort
from ..core.sampling import sample_count, select_regular_samples
from ..core.sorter import MASTER, STEP_LABELS, SortOptions
from ..core.splitters import merge_samples, select_splitters
from ..pgxd.config import PgxdConfig
from .arena import ShmLease
from .collectives import WorkerLink
from .layout import exchange_layout
from .shmsan import AccessRecorder
from .tracing import WorkerTrace, WorkerTracer, estimate_clock_offset, peak_rss_bytes


@dataclass(frozen=True)
class JobSpec:
    """Everything a worker needs for one sort, picklable, sent per job."""

    size: int
    #: Prefix bounds of each rank's block in the input lease (size+1).
    block_bounds: tuple[int, ...]
    input_lease: ShmLease
    #: Exchange + output stream for keys (doubles as the result buffer).
    key_lease: ShmLease
    #: Exchange + output stream for origin indices (None w/o provenance).
    index_lease: ShmLease | None
    #: Output stream for origin processors (None without provenance).
    proc_lease: ShmLease | None
    options: SortOptions
    config: PgxdConfig
    #: Test hook: this rank calls ``os._exit`` at ``crash_stage``.
    crash_rank: int | None = None
    crash_stage: str = "start"
    #: Record a :class:`~repro.parallel.tracing.WorkerTrace` (set by the
    #: parent when an ambient obs capture is active; off by default).
    trace: bool = False
    #: Record ShmSan access intervals for every shared-memory touch and
    #: flush them home at step boundaries (off by default; the unsanitized
    #: path pays only ``is not None`` guards).
    sanitize: bool = False
    #: Test hook: seed one invariant break on ``mutate_rank`` (a name from
    #: :data:`repro.parallel.shmsan.MUTATIONS`) — the detector's detector.
    mutate: str | None = None
    mutate_rank: int = 0
    #: Monotonic id the driver stamps on each dispatched job; threaded
    #: into traces and reports so pooled artifacts stay attributable.
    job_id: int = 0
    #: Prior-epoch ``(fingerprint, splitters)`` pairs for this key dtype
    #: and cluster size (newest last).  Empty on cold pools.
    cached_candidates: tuple[tuple[str, np.ndarray], ...] = ()
    #: Test/ops hook: probe the cache (and report the would-be verdict)
    #: but always take the full sampling path.
    force_resample: bool = False
    #: A cached candidate is usable only if the heaviest destination's
    #: histogram load stays under ``tolerance × ideal``.
    cache_balance_tolerance: float = 2.0
    #: Seeded process-level fault plan (:mod:`repro.parallel.chaos`);
    #: ``None`` — the overwhelmingly common case — keeps the worker on
    #: the exact PR-9 code path behind ``is not None`` guards.
    chaos: "object | None" = None
    #: Which attempt of the job this dispatch is (0 on the first try).
    #: Retries re-run the same logical job under a fresh generation; the
    #: chaos plan uses this to model transient vs. persistent faults.
    attempt: int = 0
    #: Original rank identity per worker slot, set by survivor-degraded
    #: re-plans (``rank_ids[slot] = original rank``); ``None`` means the
    #: identity mapping.  Keeps chaos schedules and crash hooks aimed at
    #: the same physical participant across renumberings.
    rank_ids: tuple[int, ...] | None = None


#: Backward-compatible alias (pre-PR-9 name for the per-spawn payload).
WorkerPlan = JobSpec


@dataclass
class WorkerReport:
    """Small per-rank metadata returned over the pipe (never bulk data)."""

    rank: int
    #: Keys this rank sent to each destination (row of the counts matrix).
    counts_row: np.ndarray
    #: Wall seconds per step label.
    step_seconds: dict[str, float] = field(default_factory=dict)
    samples_sent: int = 0
    searches: int = 0
    #: Final splitters (Master only; None elsewhere).
    splitters: np.ndarray | None = None
    #: Total wall seconds inside the six steps on this worker.
    wall_seconds: float = 0.0
    #: Measured blocking seconds per step label (collective waits).
    step_wait_seconds: dict[str, float] = field(default_factory=dict)
    #: Measured blocking seconds in gather/bcast/allgather replies.
    recv_wait_seconds: float = 0.0
    #: Measured blocking seconds in barriers.
    barrier_wait_seconds: float = 0.0
    #: Peak resident set size of the worker process, bytes (measured).
    peak_rss_bytes: int = 0
    #: Event payload when the parent requested tracing (None otherwise).
    trace: WorkerTrace | None = None
    #: Splitter-cache verdict for this job: ``cold`` (no candidates
    #: shipped), ``hit``, ``miss`` (fingerprint unknown),
    #: ``fallback-balance`` (matched but histogram too skewed), or
    #: ``fallback-forced`` (``force_resample``).
    splitter_cache: str = "cold"
    #: Exact distribution fingerprint of this job (Master only) — what
    #: the driver commits to its cache alongside the splitters.
    sample_fingerprint: str | None = None
    #: Job id echoed from the spec.
    job_id: int = 0


class SegmentCache:
    """Worker-side map of attached shm segments, warm across jobs.

    The arena's contract makes this safe: a named segment is never
    resized (growth allocates a *new* segment under a new name), so the
    mapping a worker opened for job *k* still addresses the same pages
    for job *k+n*.  Caching the attachment turns the per-job
    open/mmap/close churn of the spawn-per-sort design into a dict hit.
    Leases are plain (name, dtype, length, offset) descriptors, so views
    are rebuilt per job — only the ``SharedMemory`` handle is pooled.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def view(self, lease: ShmLease) -> np.ndarray:
        shm = self._segments.get(lease.name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=lease.name)
            self._segments[lease.name] = shm
        return np.ndarray(
            lease.length,
            dtype=np.dtype(lease.dtype),
            buffer=shm.buf,
            offset=lease.offset_bytes,
        )

    def close(self) -> None:
        for shm in self._segments.values():
            shm.close()
        self._segments.clear()


# ------------------------------------------------- splitter/sample cache


def sample_digest(samples: np.ndarray) -> str:
    """Exact digest of one rank's regular sample (bytes, not values)."""
    return hashlib.sha1(
        np.ascontiguousarray(samples).tobytes()
    ).hexdigest()


def combine_sample_fingerprint(
    digests: list[str], dtype: np.dtype, size: int
) -> str:
    """Combine per-rank digests into the job's distribution fingerprint.

    The fingerprint pins everything the splitter selection consumes: key
    dtype, cluster size, and the exact per-rank sample bytes in rank
    order.  Equal fingerprint ⇒ identical merged sample ⇒ identical
    splitters — which is what lets a cache hit skip selection without
    risking the bit-identity contract.
    """
    acc = hashlib.sha1(f"{np.dtype(dtype).str}|p{size}".encode())
    for digest in digests:
        acc.update(digest.encode())
    return acc.hexdigest()


def _candidate_histogram(
    sorted_keys: np.ndarray, splitters: np.ndarray, size: int
) -> np.ndarray:
    """Per-destination key counts this rank would send under ``splitters``.

    One ``searchsorted`` over the already-sorted block — the "one cheap
    histogram pass" that stands in for re-running selection when a
    candidate's fingerprint matches.
    """
    cuts = np.searchsorted(sorted_keys, splitters, side="right")
    bounds = np.concatenate(([0], cuts, [len(sorted_keys)]))
    return np.diff(bounds[: size + 1]).astype(np.int64)


def _maybe_crash(job: JobSpec, rank: int, stage: str) -> None:
    if job.crash_rank == rank and job.crash_stage == stage:
        os._exit(43)  # simulate a hard worker death (no cleanup, no message)


def _run_six_steps(
    rank: int, plan: JobSpec, link: WorkerLink, segments: SegmentCache
) -> WorkerReport:
    options, config, size = plan.options, plan.config, plan.size
    track = options.track_provenance
    report = WorkerReport(
        rank=rank,
        counts_row=np.zeros(size, dtype=np.int64),
        job_id=plan.job_id,
    )

    def _attach(lease: ShmLease) -> np.ndarray:
        return segments.view(lease)

    recorder = AccessRecorder(rank) if plan.sanitize else None
    mutation = plan.mutate if rank == plan.mutate_rank else None

    def _beat(step: str, rows: int) -> None:
        # Heartbeat the hub and piggyback a sanitizer-log flush on the
        # same step boundary, so a crash mid-run leaves the analyzer
        # every access up to the last boundary.  The chaos plan is
        # consulted first: a planned kill must not leave a heartbeat for
        # the step it never entered.
        if link.chaos is not None:
            link.chaos.at_step_boundary(step)
        link.heartbeat(step, rows)
        if recorder is not None:
            link.flush_san(recorder.drain())

    tracer: WorkerTracer | None = None
    if plan.trace:
        # Clock-offset handshake: align this process's perf_counter with
        # the hub's before any event is recorded, then barrier so every
        # rank enters step 1 from a common point.  Re-estimated per job:
        # a pooled worker's offset drifts between jobs.
        tracer = WorkerTracer(rank, job_id=plan.job_id)
        link.tracer = tracer
        if link.chaos is not None:
            link.chaos.tracer = tracer  # surviving injections leave fault events
        offset, rtt = estimate_clock_offset(link.probe)
        tracer.trace.clock_offset = offset
        tracer.trace.clock_rtt = rtt
        link.barrier()

    input_block = _attach(plan.input_lease)
    ex_keys = _attach(plan.key_lease)
    ex_index = _attach(plan.index_lease) if track else None
    out_proc = _attach(plan.proc_lease) if track else None
    lo, hi = plan.block_bounds[rank], plan.block_bounds[rank + 1]
    block = input_block[lo:hi]
    if recorder is not None:
        recorder.record(
            plan.input_lease, lo, hi, "r", 1, link.epoch, "input-read"
        )

    _beat(STEP_LABELS[0], len(block))
    t0 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    # ------------------------------------------------ step 1: local sort
    # Same data plane as the simulated sorter's parallel_quicksort:
    # packed fast path when the dtype allows, stable argsort otherwise
    # (bit-identical either way), int32 permutation.
    if track:
        fast = packed_stable_sort(block)
        if fast is not None:
            sorted_keys, order = fast
        else:
            order = block.argsort(kind="stable")
            sorted_keys = block[order]
        perm = order.astype(np.int32)
    else:
        sorted_keys = np.sort(block)
        perm = np.empty(0, dtype=np.int32)
    t1 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[0]] = t1 - t0

    # -------------------------------------------------- step 2: sampling
    # Samples are always drawn (they are cheap and they feed the exact
    # fingerprint); what the cache changes is what crosses the control
    # plane: digests + histograms instead of the sample arrays.
    _beat(STEP_LABELS[1], len(sorted_keys))
    count = sample_count(
        config, size, sorted_keys.dtype.itemsize, options.sample_factor
    )
    samples = select_regular_samples(sorted_keys, count)
    report.samples_sent = len(samples)
    splitters = None
    candidates = plan.cached_candidates
    if candidates:
        digest = sample_digest(samples)
        histograms = [
            _candidate_histogram(sorted_keys, cand_splitters, size)
            for _fp, cand_splitters in candidates
        ]
        probe = link.gather((digest, histograms), root=MASTER)
        if rank == MASTER:
            assert probe is not None
            fingerprint = combine_sample_fingerprint(
                [d for d, _h in probe], sorted_keys.dtype, size
            )
            report.sample_fingerprint = fingerprint
            chosen = next(
                (
                    i
                    for i, (cand_fp, _s) in enumerate(candidates)
                    if cand_fp == fingerprint
                ),
                None,
            )
            if chosen is None:
                decision = ("miss", None)
            elif plan.force_resample:
                decision = ("fallback-forced", None)
            else:
                loads = np.sum([h[chosen] for _d, h in probe], axis=0)
                ideal = max(float(loads.sum()) / size, 1.0)
                if float(loads.max()) / ideal > plan.cache_balance_tolerance:
                    decision = ("fallback-balance", None)
                else:
                    decision = ("hit", chosen)
        else:
            decision = None
        verdict, chosen = link.bcast(decision, root=MASTER)
        report.splitter_cache = verdict
        if chosen is not None:
            splitters = candidates[chosen][1]
            if rank == MASTER:
                report.splitters = splitters
    t2 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[1]] = t2 - t1

    # ------------------------------------------------- step 3: splitters
    # Skipped entirely on a cache hit (splitters already in hand after
    # two collectives); every other verdict rejoins the classic
    # gather-samples → select → broadcast path, so all ranks agree on
    # the collective schedule (the verdict broadcast synchronized them).
    _beat(STEP_LABELS[2], report.samples_sent)
    if splitters is None:
        gathered = link.gather(samples, root=MASTER)
        if rank == MASTER:
            assert gathered is not None
            splitters = select_splitters(merge_samples(gathered), size)
            report.splitters = splitters
            if report.sample_fingerprint is None:
                report.sample_fingerprint = combine_sample_fingerprint(
                    [sample_digest(s) for s in gathered],
                    sorted_keys.dtype,
                    size,
                )
        else:
            splitters = None
        splitters = link.bcast(splitters, root=MASTER)
    t3 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[2]] = t3 - t2

    # ------------------------------------------------- step 4: partition
    _beat(STEP_LABELS[3], len(sorted_keys))
    cut = compute_rank_cuts(
        sorted_keys, splitters, size, investigator=options.investigator
    )
    report.searches = cut.searches
    out_slices = slices_from_cuts(cut.cuts, len(sorted_keys))
    counts = np.array(
        [sl.stop - sl.start for sl in out_slices], dtype=np.int64
    )
    report.counts_row = counts
    t4 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[3]] = t4 - t3

    # -------------------------------------------------- step 5: exchange
    # Everyone learns the counts matrix, which fixes each (src, dst)
    # run's offset in the shared exchange stream; writes are disjoint.
    _beat(STEP_LABELS[4], len(sorted_keys))
    all_counts = link.allgather(counts)
    counts_matrix = np.stack(all_counts)
    _maybe_crash(plan, rank, "exchange")
    layout = exchange_layout(counts_matrix)
    key_itemsize = sorted_keys.dtype.itemsize
    row_bytes = key_itemsize + (perm.dtype.itemsize if track else 0)
    shifted = False
    for dst in range(size):
        sl = out_slices[dst]
        if sl.stop == sl.start:
            continue
        pos = layout.run_offset(rank, dst)
        end = pos + (sl.stop - sl.start)
        if mutation == "offset-off-by-one" and not shifted:
            # Seeded invariant break: slide the first nonempty run one
            # element off its counts-derived home (into a neighbour's
            # run, or backwards at the stream's end) — the overlap
            # ShmSan's offset and race checks must catch.
            if end + 1 <= len(ex_keys):
                pos, end, shifted = pos + 1, end + 1, True
            elif pos >= 1:
                pos, end, shifted = pos - 1, end - 1, True
        t_w0 = time.perf_counter() if tracer is not None else 0.0  # repro: noqa[R002] — real backend: measured flow timing is the product
        ex_keys[pos:end] = sorted_keys[sl]
        if recorder is not None:
            recorder.record(
                plan.key_lease, pos, end, "w", 5, link.epoch,
                "exchange-write", dst=dst,
            )
        if track:
            ex_index[pos:end] = perm[sl]
            if recorder is not None:
                recorder.record(
                    plan.index_lease, pos, end, "w", 5, link.epoch,
                    "exchange-write", dst=dst,
                )
        if tracer is not None:
            tracer.flow(
                dst,
                (sl.stop - sl.start) * row_bytes,
                pos * key_itemsize,
                t_w0,
                time.perf_counter(),  # repro: noqa[R002] — real backend: measured flow timing is the product
            )
    if mutation == "skip-merge-barrier":
        # Seeded invariant break: post the barrier contribution (so the
        # hub and the other ranks stay solvent) but charge ahead
        # without waiting — this rank's epoch clock does not advance,
        # so its merge runs concurrent with the others' exchange
        # writes.  The happens-before analysis must flag the races.
        link.post_only("barrier")
    else:
        link.barrier()  # all runs landed; regions are safe to read
    t5 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[4]] = t5 - t4

    # ----------------------------------------------------- step 6: merge
    # The rank's region holds one sorted run per source, back to back in
    # source order — exactly the flat k-way kernel's input layout, and
    # exactly what the simulated exchange reassembles.
    from ..core.balanced_merge import flat_kway_merge

    base, total = layout.region(rank)
    _beat(STEP_LABELS[5], total)
    region = ex_keys[base : base + total]
    if recorder is not None:
        recorder.record(
            plan.key_lease, base, base + total, "r", 6, link.epoch,
            "merge-read",
        )
    run_lengths = counts_matrix[:, rank].tolist()
    if track:
        idx_region = ex_index[base : base + total]
        if recorder is not None:
            recorder.record(
                plan.index_lease, base, base + total, "r", 6, link.epoch,
                "merge-read",
            )
        proc_col = np.empty(total, dtype=np.int16)
        bounds = layout.run_bounds(rank)
        for src in range(size):
            proc_col[bounds[src] : bounds[src + 1]] = src
        aux_cols = [idx_region, proc_col]
    else:
        aux_cols = []
    outcome = flat_kway_merge(
        region, run_lengths, aux_cols, balanced=options.balanced_merge
    )
    # Store the merged result back over the (now dead) exchange region;
    # the driver reads it from there — no pickling on the way out.
    region[:] = outcome.keys
    if recorder is not None:
        recorder.record(
            plan.key_lease, base, base + total, "w", 6, link.epoch,
            "merge-write",
        )
    if track:
        idx_region[:] = outcome.aux[0]
        out_proc[base : base + total] = outcome.aux[1]
        if recorder is not None:
            recorder.record(
                plan.index_lease, base, base + total, "w", 6, link.epoch,
                "merge-write",
            )
            recorder.record(
                plan.proc_lease, base, base + total, "w", 6, link.epoch,
                "proc-write",
            )
    if recorder is not None:
        link.flush_san(recorder.drain())
    t6 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
    report.step_seconds[STEP_LABELS[5]] = t6 - t5
    report.wall_seconds = t6 - t0
    report.step_wait_seconds = dict(link.wait_by_step)
    report.recv_wait_seconds = link.wait_by_kind["recv-wait"]
    report.barrier_wait_seconds = link.wait_by_kind["barrier-wait"]
    report.peak_rss_bytes = peak_rss_bytes()
    if tracer is not None:
        for start, end, label in zip(
            (t0, t1, t2, t3, t4, t5),
            (t1, t2, t3, t4, t5, t6),
            STEP_LABELS,
        ):
            tracer.step(start, end, label)
        report.trace = tracer.trace
    return report


def worker_main(rank: int, size: int, conn: Connection) -> None:
    """Process entry point: the persistent per-rank job loop.

    Spawned once per pool generation.  Blocks on the control pipe for
    each :class:`JobSpec`, resets the link's per-job state (collective
    sequence, epoch clock, tracer — see
    :meth:`~repro.parallel.collectives.WorkerLink.reset`), runs the six
    steps against the warm :class:`SegmentCache`, reports done, and
    waits for the next dispatch.  A ``("stop",)`` message (or EOF from a
    vanished driver) ends the loop and releases the cached attachments.

    Any exception inside a job is serialized to the driver (which
    re-raises it as a typed
    :class:`~repro.parallel.errors.WorkerFailedError`); the worker then
    exits hard so a broken rank can never wedge the cluster — the
    driver's respawn policy builds the *next* generation around the
    hole.
    """
    link = WorkerLink(rank, size, conn)
    segments = SegmentCache()
    try:
        while True:
            try:
                job = link.recv_job()
            except (EOFError, OSError):
                break  # driver vanished without a stop message
            if job is None:
                break
            link.reset()
            if job.chaos is not None:
                # Chaos schedules address *original* rank ids; under a
                # survivor-degraded re-plan this slot's identity rides on
                # the spec, so a poisoned rank stays poisoned through any
                # renumbering and excluded ranks take no one down with them.
                identity = (
                    job.rank_ids[rank] if job.rank_ids is not None else rank
                )
                link.chaos = job.chaos.worker_state(
                    identity, job.job_id, job.attempt
                )
            try:
                _maybe_crash(job, rank, "start")
                report = _run_six_steps(rank, job, link, segments)
                link.send_done(report)
            except BaseException as exc:  # repro: noqa[R006] — process boundary: the exception is serialized to the driver, which re-raises it typed
                try:
                    link.send_error(type(exc).__name__, traceback.format_exc())
                except Exception:  # repro: noqa[R006] — pipe already gone; the hub detects the crash by liveness instead
                    pass
                os._exit(1)
    finally:
        segments.close()
