"""The per-rank worker loop of the multiprocess backend.

One process per rank runs :func:`worker_main`, executing the paper's six
steps over real OS parallelism — the same step implementations as the
simulated sorter and the in-process reference backend (regular sampling,
Master splitter selection, the investigator, the flat k-way merge), so the
produced partitions are **bit-identical** to both.

Data plane (all shared memory, described by a :class:`WorkerPlan`):

* the unsorted input lives in one shm block, rank ``r`` reading
  ``input[bounds[r]:bounds[r+1]]``;
* the step-5 exchange writes *directly into the receivers' regions* of a
  second shm block: the allgathered counts matrix fixes every (src, dst)
  run's offset, the regions are disjoint, so every rank writes its
  outgoing runs concurrently with zero copies through the control plane
  and zero locks — a barrier separates the writes from the merges;
* step 6 merges the rank's own region with the flat k-way kernel and
  stores the result (keys + provenance) back over that region, where the
  driver collects it.

Control plane (pickled over one pipe per rank, via the hub in
:mod:`repro.parallel.collectives`): the sample gather, the splitter
broadcast, the counts allgather, and the pre/post-exchange barriers —
bytes proportional to ``p``, never to ``n``.

Timing here is *wall-clock* (``time.perf_counter``), which is the whole
point of this backend; the simulated path keeps its virtual clock.

Observability: every worker heartbeats the hub at each step boundary
(always on — six tiny pipe messages that power the crash detector's
which-step-died diagnostics) and, when the parent requested tracing
(``plan.trace``), records a :class:`~repro.parallel.tracing.WorkerTrace`
— clock-offset handshake, per-step windows, collective wait spans, one
flow per (src, dst) shm write with bytes and destination offsets, and
counter samples — shipped home on the :class:`WorkerReport` and merged
on the parent into the simnet-schema tracer.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection

import numpy as np

from ..core.investigator import compute_rank_cuts, slices_from_cuts
from ..core.packsort import packed_stable_sort
from ..core.sampling import sample_count, select_regular_samples
from ..core.sorter import MASTER, STEP_LABELS, SortOptions
from ..core.splitters import merge_samples, select_splitters
from ..pgxd.config import PgxdConfig
from .arena import AttachedLease, ShmLease, attach
from .collectives import WorkerLink
from .layout import exchange_layout
from .shmsan import AccessRecorder
from .tracing import WorkerTrace, WorkerTracer, estimate_clock_offset, peak_rss_bytes


@dataclass(frozen=True)
class WorkerPlan:
    """Everything a worker needs, picklable, shipped once at spawn."""

    size: int
    #: Prefix bounds of each rank's block in the input lease (size+1).
    block_bounds: tuple[int, ...]
    input_lease: ShmLease
    #: Exchange + output stream for keys (doubles as the result buffer).
    key_lease: ShmLease
    #: Exchange + output stream for origin indices (None w/o provenance).
    index_lease: ShmLease | None
    #: Output stream for origin processors (None without provenance).
    proc_lease: ShmLease | None
    options: SortOptions
    config: PgxdConfig
    #: Test hook: this rank calls ``os._exit`` at ``crash_stage``.
    crash_rank: int | None = None
    crash_stage: str = "start"
    #: Record a :class:`~repro.parallel.tracing.WorkerTrace` (set by the
    #: parent when an ambient obs capture is active; off by default).
    trace: bool = False
    #: Record ShmSan access intervals for every shared-memory touch and
    #: flush them home at step boundaries (off by default; the unsanitized
    #: path pays only ``is not None`` guards).
    sanitize: bool = False
    #: Test hook: seed one invariant break on ``mutate_rank`` (a name from
    #: :data:`repro.parallel.shmsan.MUTATIONS`) — the detector's detector.
    mutate: str | None = None
    mutate_rank: int = 0


@dataclass
class WorkerReport:
    """Small per-rank metadata returned over the pipe (never bulk data)."""

    rank: int
    #: Keys this rank sent to each destination (row of the counts matrix).
    counts_row: np.ndarray
    #: Wall seconds per step label.
    step_seconds: dict[str, float] = field(default_factory=dict)
    samples_sent: int = 0
    searches: int = 0
    #: Final splitters (Master only; None elsewhere).
    splitters: np.ndarray | None = None
    #: Total wall seconds inside the six steps on this worker.
    wall_seconds: float = 0.0
    #: Measured blocking seconds per step label (collective waits).
    step_wait_seconds: dict[str, float] = field(default_factory=dict)
    #: Measured blocking seconds in gather/bcast/allgather replies.
    recv_wait_seconds: float = 0.0
    #: Measured blocking seconds in barriers.
    barrier_wait_seconds: float = 0.0
    #: Peak resident set size of the worker process, bytes (measured).
    peak_rss_bytes: int = 0
    #: Event payload when the parent requested tracing (None otherwise).
    trace: WorkerTrace | None = None


def _maybe_crash(plan: WorkerPlan, rank: int, stage: str) -> None:
    if plan.crash_rank == rank and plan.crash_stage == stage:
        os._exit(43)  # simulate a hard worker death (no cleanup, no message)


def _run_six_steps(rank: int, plan: WorkerPlan, link: WorkerLink) -> WorkerReport:
    options, config, size = plan.options, plan.config, plan.size
    track = options.track_provenance
    report = WorkerReport(rank=rank, counts_row=np.zeros(size, dtype=np.int64))
    attachments: list[AttachedLease] = []

    def _attach(lease: ShmLease) -> np.ndarray:
        mapped = attach(lease)
        attachments.append(mapped)
        return mapped.array

    recorder = AccessRecorder(rank) if plan.sanitize else None
    mutation = plan.mutate if rank == plan.mutate_rank else None

    def _beat(step: str, rows: int) -> None:
        # Heartbeat the hub and piggyback a sanitizer-log flush on the
        # same step boundary, so a crash mid-run leaves the analyzer
        # every access up to the last boundary.
        link.heartbeat(step, rows)
        if recorder is not None:
            link.flush_san(recorder.drain())

    tracer: WorkerTracer | None = None
    if plan.trace:
        # Clock-offset handshake: align this process's perf_counter with
        # the hub's before any event is recorded, then barrier so every
        # rank enters step 1 from a common point.
        tracer = WorkerTracer(rank)
        link.tracer = tracer
        offset, rtt = estimate_clock_offset(link.probe)
        tracer.trace.clock_offset = offset
        tracer.trace.clock_rtt = rtt
        link.barrier()

    try:
        input_block = _attach(plan.input_lease)
        ex_keys = _attach(plan.key_lease)
        ex_index = _attach(plan.index_lease) if track else None
        out_proc = _attach(plan.proc_lease) if track else None
        lo, hi = plan.block_bounds[rank], plan.block_bounds[rank + 1]
        block = input_block[lo:hi]
        if recorder is not None:
            recorder.record(
                plan.input_lease, lo, hi, "r", 1, link.epoch, "input-read"
            )

        _beat(STEP_LABELS[0], len(block))
        t0 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        # ------------------------------------------------ step 1: local sort
        # Same data plane as the simulated sorter's parallel_quicksort:
        # packed fast path when the dtype allows, stable argsort otherwise
        # (bit-identical either way), int32 permutation.
        if track:
            fast = packed_stable_sort(block)
            if fast is not None:
                sorted_keys, order = fast
            else:
                order = block.argsort(kind="stable")
                sorted_keys = block[order]
            perm = order.astype(np.int32)
        else:
            sorted_keys = np.sort(block)
            perm = np.empty(0, dtype=np.int32)
        t1 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[0]] = t1 - t0

        # -------------------------------------------------- step 2: sampling
        _beat(STEP_LABELS[1], len(sorted_keys))
        count = sample_count(
            config, size, sorted_keys.dtype.itemsize, options.sample_factor
        )
        samples = select_regular_samples(sorted_keys, count)
        report.samples_sent = len(samples)
        gathered = link.gather(samples, root=MASTER)
        t2 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[1]] = t2 - t1

        # ------------------------------------------------- step 3: splitters
        _beat(STEP_LABELS[2], report.samples_sent)
        if rank == MASTER:
            assert gathered is not None
            splitters = select_splitters(merge_samples(gathered), size)
            report.splitters = splitters
        else:
            splitters = None
        splitters = link.bcast(splitters, root=MASTER)
        t3 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[2]] = t3 - t2

        # ------------------------------------------------- step 4: partition
        _beat(STEP_LABELS[3], len(sorted_keys))
        cut = compute_rank_cuts(
            sorted_keys, splitters, size, investigator=options.investigator
        )
        report.searches = cut.searches
        out_slices = slices_from_cuts(cut.cuts, len(sorted_keys))
        counts = np.array(
            [sl.stop - sl.start for sl in out_slices], dtype=np.int64
        )
        report.counts_row = counts
        t4 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[3]] = t4 - t3

        # -------------------------------------------------- step 5: exchange
        # Everyone learns the counts matrix, which fixes each (src, dst)
        # run's offset in the shared exchange stream; writes are disjoint.
        _beat(STEP_LABELS[4], len(sorted_keys))
        all_counts = link.allgather(counts)
        counts_matrix = np.stack(all_counts)
        _maybe_crash(plan, rank, "exchange")
        layout = exchange_layout(counts_matrix)
        key_itemsize = sorted_keys.dtype.itemsize
        row_bytes = key_itemsize + (perm.dtype.itemsize if track else 0)
        shifted = False
        for dst in range(size):
            sl = out_slices[dst]
            if sl.stop == sl.start:
                continue
            pos = layout.run_offset(rank, dst)
            end = pos + (sl.stop - sl.start)
            if mutation == "offset-off-by-one" and not shifted:
                # Seeded invariant break: slide the first nonempty run one
                # element off its counts-derived home (into a neighbour's
                # run, or backwards at the stream's end) — the overlap
                # ShmSan's offset and race checks must catch.
                if end + 1 <= len(ex_keys):
                    pos, end, shifted = pos + 1, end + 1, True
                elif pos >= 1:
                    pos, end, shifted = pos - 1, end - 1, True
            t_w0 = time.perf_counter() if tracer is not None else 0.0  # repro: noqa[R002] — real backend: measured flow timing is the product
            ex_keys[pos:end] = sorted_keys[sl]
            if recorder is not None:
                recorder.record(
                    plan.key_lease, pos, end, "w", 5, link.epoch,
                    "exchange-write", dst=dst,
                )
            if track:
                ex_index[pos:end] = perm[sl]
                if recorder is not None:
                    recorder.record(
                        plan.index_lease, pos, end, "w", 5, link.epoch,
                        "exchange-write", dst=dst,
                    )
            if tracer is not None:
                tracer.flow(
                    dst,
                    (sl.stop - sl.start) * row_bytes,
                    pos * key_itemsize,
                    t_w0,
                    time.perf_counter(),  # repro: noqa[R002] — real backend: measured flow timing is the product
                )
        if mutation == "skip-merge-barrier":
            # Seeded invariant break: post the barrier contribution (so the
            # hub and the other ranks stay solvent) but charge ahead
            # without waiting — this rank's epoch clock does not advance,
            # so its merge runs concurrent with the others' exchange
            # writes.  The happens-before analysis must flag the races.
            link.post_only("barrier")
        else:
            link.barrier()  # all runs landed; regions are safe to read
        t5 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[4]] = t5 - t4

        # ----------------------------------------------------- step 6: merge
        # The rank's region holds one sorted run per source, back to back in
        # source order — exactly the flat k-way kernel's input layout, and
        # exactly what the simulated exchange reassembles.
        from ..core.balanced_merge import flat_kway_merge

        base, total = layout.region(rank)
        _beat(STEP_LABELS[5], total)
        region = ex_keys[base : base + total]
        if recorder is not None:
            recorder.record(
                plan.key_lease, base, base + total, "r", 6, link.epoch,
                "merge-read",
            )
        run_lengths = counts_matrix[:, rank].tolist()
        if track:
            idx_region = ex_index[base : base + total]
            if recorder is not None:
                recorder.record(
                    plan.index_lease, base, base + total, "r", 6, link.epoch,
                    "merge-read",
                )
            proc_col = np.empty(total, dtype=np.int16)
            bounds = layout.run_bounds(rank)
            for src in range(size):
                proc_col[bounds[src] : bounds[src + 1]] = src
            aux_cols = [idx_region, proc_col]
        else:
            aux_cols = []
        outcome = flat_kway_merge(
            region, run_lengths, aux_cols, balanced=options.balanced_merge
        )
        # Store the merged result back over the (now dead) exchange region;
        # the driver reads it from there — no pickling on the way out.
        region[:] = outcome.keys
        if recorder is not None:
            recorder.record(
                plan.key_lease, base, base + total, "w", 6, link.epoch,
                "merge-write",
            )
        if track:
            idx_region[:] = outcome.aux[0]
            out_proc[base : base + total] = outcome.aux[1]
            if recorder is not None:
                recorder.record(
                    plan.index_lease, base, base + total, "w", 6, link.epoch,
                    "merge-write",
                )
                recorder.record(
                    plan.proc_lease, base, base + total, "w", 6, link.epoch,
                    "proc-write",
                )
        if recorder is not None:
            link.flush_san(recorder.drain())
        t6 = time.perf_counter()  # repro: noqa[R002] — real backend: measured step wall time is the product
        report.step_seconds[STEP_LABELS[5]] = t6 - t5
        report.wall_seconds = t6 - t0
        report.step_wait_seconds = dict(link.wait_by_step)
        report.recv_wait_seconds = link.wait_by_kind["recv-wait"]
        report.barrier_wait_seconds = link.wait_by_kind["barrier-wait"]
        report.peak_rss_bytes = peak_rss_bytes()
        if tracer is not None:
            for start, end, label in zip(
                (t0, t1, t2, t3, t4, t5),
                (t1, t2, t3, t4, t5, t6),
                STEP_LABELS,
            ):
                tracer.step(start, end, label)
            report.trace = tracer.trace
        return report
    finally:
        for mapped in attachments:
            mapped.close()


def worker_main(rank: int, plan: WorkerPlan, conn: Connection) -> None:
    """Process entry point: run the six steps, report done or error.

    Any exception is serialized to the driver (which re-raises it as a
    typed :class:`~repro.parallel.errors.WorkerFailedError`); the worker
    then exits hard so a broken rank can never wedge the cluster.
    """
    link = WorkerLink(rank, plan.size, conn)
    try:
        _maybe_crash(plan, rank, "start")
        report = _run_six_steps(rank, plan, link)
        link.send_done(report)
    except BaseException as exc:  # repro: noqa[R006] — process boundary: the exception is serialized to the driver, which re-raises it typed
        try:
            link.send_error(type(exc).__name__, traceback.format_exc())
        except Exception:  # repro: noqa[R006] — pipe already gone; the hub detects the crash by liveness instead
            pass
        os._exit(1)
