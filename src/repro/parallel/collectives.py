"""Pipe-based control-plane collectives for the process backend.

The sort's *data* never touches a pipe — it moves through shared memory
(:mod:`repro.parallel.arena`).  What does cross pipes is the lightweight
control plane the six-step algorithm needs: the sample gather to the
Master, the splitter broadcast, the counts-matrix allgather before the
exchange, and barriers around the shared-memory writes.

Topology is a star: each worker holds one duplex pipe to the driver, and
the driver runs :func:`serve_control_plane` — a tiny collective server
that collects one contribution per rank per operation, computes the reply
(gather/bcast/allgather/barrier), and answers every participant.  All
ranks execute the same program, so operations arrive in the same order on
every pipe and are matched by an (op, sequence) key.

The hub is also the backend's *liveness monitor*: while waiting for
contributions it watches worker processes, so a crashed rank surfaces as a
typed :class:`~repro.parallel.errors.WorkerCrashedError` instead of the
barrier deadlock it would cause in a leaderless design.  Workers send a
fire-and-forget **heartbeat** at every step boundary (rank, step label,
rows); the hub keeps the latest per rank, forwards them to an optional
live-progress sink (the CLI's ``--progress``), and folds the last beat of
a dead or hung rank into the crash/timeout diagnostics — a worker that
dies mid-run reports *which step* it died in.

Two per-rank (non-collective) message kinds support observability: a
``probe`` is answered immediately with the hub's ``perf_counter`` reading
(the clock-offset handshake of :mod:`repro.parallel.tracing`), and a
``hb`` heartbeat is recorded without a reply.  Worker-side, the
:class:`WorkerLink` always measures its blocking time per collective
(two clock reads per call — noise next to a pipe round-trip) so real
runs report measured wait seconds even without a tracer attached.

The same star also carries the **job plane** of the persistent pool
(PR 9): between sorts every worker blocks in :meth:`WorkerLink.recv_job`
waiting for the driver's :func:`dispatch_job` (a ``("job", spec)``
message) or :func:`send_shutdown` (``("stop",)``).  Dispatch messages
are self-describing tuples so a worker can drain any stale collective
reply left queued on its pipe (e.g. by the ``skip-merge-barrier``
mutation's abandoned barrier) without misreading it as a job.  Each job
starts from :meth:`WorkerLink.reset`: sequence numbers, the epoch clock,
wait accumulators, and the tracer all return to their just-spawned state
so ShmSan epochs and trace attribution never bleed across jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any

from .errors import ControlPlaneTimeout, ProtocolError, WorkerCrashedError

#: How often the hub wakes to check worker liveness while idle (seconds).
_POLL_SECONDS = 0.25


class WorkerLink:
    """Worker-side endpoint: blocking collectives over one pipe.

    Mirrors the simnet collective API (:mod:`repro.simnet.collectives`)
    closely enough that the six-step program reads the same in both
    backends: ``gather`` returns the rank-ordered list at the root and
    ``None`` elsewhere, ``bcast`` returns the root's payload everywhere,
    ``allgather`` returns the full list to all ranks, ``barrier`` returns
    once every rank arrived.

    Every collective's blocking time is accumulated by kind
    (``barrier`` → barrier wait, everything else → recv wait) and by the
    current step label (set by the worker loop via :attr:`step_label`);
    when a :class:`~repro.parallel.tracing.WorkerTracer` is attached the
    same interval is also recorded as a wait span.
    """

    def __init__(self, rank: int, size: int, conn: Connection):
        self.rank = rank
        self.size = size
        self.conn = conn
        self._seq = 0
        #: Attached tracer (None on untraced runs — the guard pattern).
        self.tracer = None
        #: Attached per-attempt chaos state (None on un-chaosed runs —
        #: the same guard pattern; see :mod:`repro.parallel.chaos`).
        self.chaos = None
        #: Label of the step the worker loop is currently inside.
        self.step_label = ""
        #: Measured blocking seconds, by wait kind and by step label.
        self.wait_by_kind = {"recv-wait": 0.0, "barrier-wait": 0.0}
        self.wait_by_step: dict[str, float] = {}
        #: Completed collectives on this rank.  Every collective is a full
        #: barrier through the hub (the reply only arrives after all ranks
        #: contributed) and all ranks run the same program, so this count
        #: is a *global* happens-before clock: accesses in different epochs
        #: are ordered, accesses in the same epoch are concurrent.  ShmSan
        #: stamps every shared-memory access interval with it.
        self.epoch = 0

    def reset(self) -> None:
        """Return the link to its just-spawned state for the next job.

        Pooled workers reuse one link across many sorts; every per-job
        quantity — the collective sequence counter (the hub matches ops
        by ``(op, seq)``, so both sides must restart from zero), the
        epoch happens-before clock ShmSan stamps accesses with, the
        measured wait accumulators, and the attached tracer — must start
        fresh or state from job *k* would corrupt the analysis of job
        *k+1*.  The hub's matching state is per ``serve_control_plane``
        call, so resetting the worker side is sufficient.
        """
        self._seq = 0
        self.epoch = 0
        self.tracer = None
        self.chaos = None
        self.step_label = ""
        self.wait_by_kind = {"recv-wait": 0.0, "barrier-wait": 0.0}
        self.wait_by_step = {}

    def recv_job(self):
        """Block until the next job dispatch; ``None`` means shut down.

        Drains anything that is not a ``("job", spec)`` or ``("stop",)``
        tuple: a worker that ran the ``skip-merge-barrier`` mutation (or
        any ``post_only`` path) finishes its job with the hub's reply to
        the abandoned collective still queued on the pipe, and that stale
        message must not be mistaken for the next dispatch.  EOF from a
        driver that dropped the pipe without a stop message propagates to
        the caller (the pool loop treats it as shutdown).
        """
        while True:
            msg = self.conn.recv()
            if isinstance(msg, tuple) and msg:
                if msg[0] == "job" and len(msg) == 2:
                    return msg[1]
                if msg[0] == "stop":
                    return None
            # Stale collective reply (or unknown debris): drop and re-wait.

    def _collective(self, op: str, payload: Any = None, root: int = 0) -> Any:
        if self.chaos is not None:
            # hang-at-collective: the planned rank sleeps here instead of
            # contributing — no process dies, so only the hub's per-phase
            # deadline can convert this into a typed, rank-attributed
            # ControlPlaneTimeout.
            self.chaos.before_collective(op)
        self._seq += 1
        start = time.perf_counter()  # repro: noqa[R002] — real backend: measured pipe-blocking time is the point
        self.conn.send(("coll", op, self._seq, self.rank, root, payload))
        reply = self.conn.recv()
        self.epoch += 1
        end = time.perf_counter()  # repro: noqa[R002] — real backend: measured pipe-blocking time is the point
        kind = "barrier-wait" if op == "barrier" else "recv-wait"
        self.wait_by_kind[kind] += end - start
        if self.step_label:
            self.wait_by_step[self.step_label] = (
                self.wait_by_step.get(self.step_label, 0.0) + (end - start)
            )
        if self.tracer is not None:
            self.tracer.wait(kind, op, start, end)
        return reply

    def barrier(self) -> None:
        self._collective("barrier")

    def gather(self, payload: Any, root: int = 0) -> list | None:
        return self._collective("gather", payload, root)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        return self._collective("bcast", payload, root)

    def allgather(self, payload: Any) -> list:
        return self._collective("allgather", payload)

    def post_only(self, op: str) -> None:
        """Contribute to a collective without waiting for its completion.

        **Mutation hook, not an API.**  ShmSan's ``skip-merge-barrier``
        mutation uses this to model a buggy worker that posts its barrier
        contribution but charges ahead without waiting — the hub stays
        solvent (all ``p`` contributions arrive, other ranks unblock), but
        this rank's epoch clock does *not* advance, so its subsequent
        accesses are concurrent with the pre-barrier writes.  The reply
        the hub eventually sends stays queued on the pipe unread; the
        worker exits before it would matter.
        """
        self._seq += 1
        self.conn.send(("coll", op, self._seq, self.rank, 0, None))

    def flush_san(self, records: list) -> None:
        """Fire-and-forget: ship drained sanitizer access records home.

        Called at step boundaries and on completion when sanitizing is
        active, so a worker that crashes mid-run has already delivered its
        log up to the last boundary — the partial-analysis path.
        """
        if records:
            self.conn.send(("san", self.rank, records))

    # ------------------------------------------------- observability plane

    def probe(self) -> float:
        """Round-trip one clock probe; returns the hub's ``perf_counter``.

        Per-rank, not a collective: the hub answers immediately, so the
        round trip bounds the clock-offset estimate (see
        :func:`repro.parallel.tracing.estimate_clock_offset`).
        """
        self.conn.send(("probe", self.rank))
        return self.conn.recv()

    def heartbeat(self, step: str, rows: int) -> None:
        """Fire-and-forget liveness beat: entering ``step`` with ``rows``.

        Also rotates :attr:`step_label` so subsequent collective waits are
        attributed to the new step.  A chaos-muted rank still rotates the
        label (the sort is unaffected) but suppresses the pipe message —
        degrading crash *detection* to "no heartbeat received", which is
        precisely the diagnostics path the ``mute=`` fault exercises.
        """
        self.step_label = step
        if self.chaos is not None and self.chaos.muted:
            self.chaos.note_muted(step)
            return
        self.conn.send(("hb", self.rank, step, int(rows)))

    def send_done(self, payload: Any) -> None:
        self.conn.send(("done", self.rank, payload))

    def send_error(self, exc_type: str, traceback_text: str) -> None:
        self.conn.send(("error", self.rank, exc_type, traceback_text))


def dispatch_job(conns: list[Connection], spec: Any) -> None:
    """Send one job spec to every pooled worker (driver side).

    The counterpart of :meth:`WorkerLink.recv_job`.  Dispatch is the only
    parent→worker message outside collective replies, and it is framed as
    ``("job", spec)`` so the worker's drain loop can tell it apart from a
    stale reply.  After dispatching, the driver must run
    :func:`serve_control_plane` over the same conns to completion (or
    tear the pool down on error) before dispatching again.
    """
    for conn in conns:
        conn.send(("job", spec))


def send_shutdown(conns: list[Connection]) -> None:
    """Ask every pooled worker to exit its job loop (driver side).

    Best-effort by design: a worker that already died (crash tests, OS
    kill) leaves a broken pipe behind, and shutdown must still reach the
    survivors.
    """
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass  # repro: noqa[R006] — pipe already dead; shutdown is best-effort


@dataclass
class _PendingOp:
    root: int
    contributions: dict[int, Any]
    #: Hub clock when the first contribution opened this collective —
    #: what the per-phase deadline measures against.
    opened_at: float = 0.0


def _reply(op: str, pending: _PendingOp, size: int) -> dict[int, Any]:
    """Compute each rank's reply for a completed collective."""
    if op == "barrier":
        return {rank: None for rank in range(size)}
    if op == "gather":
        ordered = [pending.contributions[r] for r in range(size)]
        return {
            rank: (ordered if rank == pending.root else None)
            for rank in range(size)
        }
    if op == "bcast":
        value = pending.contributions[pending.root]
        return {rank: value for rank in range(size)}
    if op == "allgather":
        ordered = [pending.contributions[r] for r in range(size)]
        return {rank: ordered for rank in range(size)}
    raise ProtocolError(f"unknown collective op {op!r}")


def serve_control_plane(
    conns: list[Connection],
    processes: list,
    *,
    timeout_seconds: float | None = None,
    phase_timeout_seconds: float | None = None,
    progress=None,
    san_sink=None,
    chaos=None,
) -> dict[int, Any]:
    """Drive the collective hub until every worker reports done.

    ``conns[rank]`` is the driver end of rank's pipe; ``processes[rank]``
    the worker process (anything with ``is_alive()`` and ``exitcode``).
    ``progress``, when given, receives every heartbeat as
    ``progress(rank, step_label, rows)``; ``san_sink``, when given,
    receives every flushed batch of sanitizer access records as
    ``san_sink(rank, records)`` (delivered at step boundaries, so a
    partial log survives a crash).  Returns ``{rank:
    done_payload}``.  Raises
    :class:`~repro.parallel.errors.WorkerCrashedError` when a pipe hits
    EOF or a process dies with messages outstanding (carrying the dead
    rank's last heartbeat step and its age),
    :class:`~repro.parallel.errors.WorkerFailedError` when a worker
    reports an exception (re-raised by the caller from the payload), and
    :class:`~repro.parallel.errors.ControlPlaneTimeout` when
    ``timeout_seconds`` passes without any progress (naming each rank's
    last heartbeat, so a hang reports which step every worker was in).

    ``phase_timeout_seconds`` arms the *per-phase deadline*: no single
    collective may stay open longer than this, even while other traffic
    (heartbeats, sanitizer flushes) keeps resetting the global
    no-progress clock.  This is what detects a hung-but-alive rank
    promptly — the resulting :class:`ControlPlaneTimeout` names the
    ``missing_ranks`` whose contribution never arrived, so the retry
    layer can charge the failure to a specific rank with no corpse to
    point at.

    ``chaos``, when given, is a
    :class:`~repro.parallel.chaos.HubChaosState`: each collective reply
    may be preceded by a seeded delay spike (the pipe-star latency
    fault).  The no-chaos path pays one ``is not None`` check per reply.
    """
    from .errors import WorkerFailedError

    size = len(conns)
    rank_of = {id(conn): rank for rank, conn in enumerate(conns)}
    active: set[int] = set(range(size))
    done: dict[int, Any] = {}
    pending: dict[tuple[str, int], _PendingOp] = {}
    #: rank -> (step label, rows, hub time the beat arrived).
    heartbeats: dict[int, tuple[str, int, float]] = {}
    last_progress = time.perf_counter()  # repro: noqa[R002] — real backend: liveness/timeout bookkeeping needs the wall clock

    def phase() -> str:
        if pending:
            ops = ", ".join(f"{op}#{seq}" for op, seq in sorted(pending))
            return f"collectives pending: {ops}"
        return "between collectives"

    def last_beat(rank: int) -> tuple[str | None, float | None]:
        beat = heartbeats.get(rank)
        if beat is None:
            return None, None
        step, _rows, seen = beat
        return step, time.perf_counter() - seen  # repro: noqa[R002] — real backend: heartbeat age for crash diagnostics

    def beat_summary() -> str:
        if not heartbeats:
            return "no heartbeats received"
        parts = [
            f"r{rank}@{heartbeats[rank][0]}" for rank in sorted(heartbeats)
        ]
        return "last heartbeats: " + ", ".join(parts)

    def crash(rank: int) -> WorkerCrashedError:
        proc = processes[rank]
        exitcode = getattr(proc, "exitcode", None)
        step, age = last_beat(rank)
        return WorkerCrashedError(
            rank, exitcode, phase(), last_step=step, heartbeat_age=age
        )

    def check_phase_deadline(now: float) -> None:
        if phase_timeout_seconds is None or not pending:
            return
        key = min(pending, key=lambda k: pending[k].opened_at)
        slot = pending[key]
        age = now - slot.opened_at
        if age > phase_timeout_seconds:
            op, seq = key
            missing = tuple(
                r for r in range(size) if r not in slot.contributions
            )
            raise ControlPlaneTimeout(
                age,
                f"collective {op}#{seq} open past its {phase_timeout_seconds:.1f}s"
                f" phase deadline",
                heartbeats=beat_summary(),
                missing_ranks=missing,
            )

    while active:
        ready = wait([conns[r] for r in active], timeout=_POLL_SECONDS)
        now = time.perf_counter()  # repro: noqa[R002] — real backend: liveness/timeout bookkeeping needs the wall clock
        check_phase_deadline(now)
        if not ready:
            for rank in sorted(active):
                proc = processes[rank]
                if not proc.is_alive() and not conns[rank].poll():
                    raise crash(rank)
            if (
                timeout_seconds is not None
                and now - last_progress > timeout_seconds
            ):
                raise ControlPlaneTimeout(
                    now - last_progress, phase(), heartbeats=beat_summary()
                )
            continue
        last_progress = now
        for conn in ready:
            rank = rank_of[id(conn)]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                raise crash(rank) from None
            kind = msg[0]
            if kind == "done":
                done[msg[1]] = msg[2]
                active.discard(msg[1])
            elif kind == "error":
                step, _age = last_beat(msg[1])
                raise WorkerFailedError(msg[1], msg[2], msg[3], last_step=step)
            elif kind == "hb":
                _, sender, step, rows = msg
                heartbeats[sender] = (step, rows, now)
                if progress is not None:
                    progress(sender, step, rows)
            elif kind == "san":
                _, sender, records = msg
                if san_sink is not None:
                    san_sink(sender, records)
            elif kind == "probe":
                # Clock-sync handshake: answer with the hub clock, now.
                conns[msg[1]].send(time.perf_counter())  # repro: noqa[R002] — real backend: the clock-sync handshake IS a clock read
            elif kind == "coll":
                _, op, seq, sender, root, payload = msg
                key = (op, seq)
                slot = pending.get(key)
                if slot is None:
                    slot = pending[key] = _PendingOp(
                        root=root, contributions={}, opened_at=now
                    )
                elif slot.root != root:
                    raise ProtocolError(
                        f"collective {op}#{seq}: rank {sender} named root "
                        f"{root}, earlier ranks named {slot.root}"
                    )
                if sender in slot.contributions:
                    raise ProtocolError(
                        f"collective {op}#{seq}: duplicate contribution "
                        f"from rank {sender}"
                    )
                slot.contributions[sender] = payload
                if len(slot.contributions) == size:
                    del pending[key]
                    replies = _reply(op, slot, size)
                    for peer, reply in replies.items():
                        if chaos is not None:
                            chaos.maybe_delay_reply()
                        conns[peer].send(reply)
            else:
                raise ProtocolError(f"unknown control message kind {kind!r}")
    if pending:
        ops = ", ".join(f"{op}#{seq}" for op, seq in sorted(pending))
        raise ProtocolError(
            f"all workers reported done but collectives never completed: {ops}"
        )
    return done
