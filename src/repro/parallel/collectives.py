"""Pipe-based control-plane collectives for the process backend.

The sort's *data* never touches a pipe — it moves through shared memory
(:mod:`repro.parallel.arena`).  What does cross pipes is the lightweight
control plane the six-step algorithm needs: the sample gather to the
Master, the splitter broadcast, the counts-matrix allgather before the
exchange, and barriers around the shared-memory writes.

Topology is a star: each worker holds one duplex pipe to the driver, and
the driver runs :func:`serve_control_plane` — a tiny collective server
that collects one contribution per rank per operation, computes the reply
(gather/bcast/allgather/barrier), and answers every participant.  All
ranks execute the same program, so operations arrive in the same order on
every pipe and are matched by an (op, sequence) key.

The hub is also the backend's *liveness monitor*: while waiting for
contributions it watches worker processes, so a crashed rank surfaces as a
typed :class:`~repro.parallel.errors.WorkerCrashedError` instead of the
barrier deadlock it would cause in a leaderless design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait
from typing import Any

from .errors import ControlPlaneTimeout, ProtocolError, WorkerCrashedError

#: How often the hub wakes to check worker liveness while idle (seconds).
_POLL_SECONDS = 0.25


class WorkerLink:
    """Worker-side endpoint: blocking collectives over one pipe.

    Mirrors the simnet collective API (:mod:`repro.simnet.collectives`)
    closely enough that the six-step program reads the same in both
    backends: ``gather`` returns the rank-ordered list at the root and
    ``None`` elsewhere, ``bcast`` returns the root's payload everywhere,
    ``allgather`` returns the full list to all ranks, ``barrier`` returns
    once every rank arrived.
    """

    def __init__(self, rank: int, size: int, conn: Connection):
        self.rank = rank
        self.size = size
        self.conn = conn
        self._seq = 0

    def _collective(self, op: str, payload: Any = None, root: int = 0) -> Any:
        self._seq += 1
        self.conn.send(("coll", op, self._seq, self.rank, root, payload))
        return self.conn.recv()

    def barrier(self) -> None:
        self._collective("barrier")

    def gather(self, payload: Any, root: int = 0) -> list | None:
        return self._collective("gather", payload, root)

    def bcast(self, payload: Any, root: int = 0) -> Any:
        return self._collective("bcast", payload, root)

    def allgather(self, payload: Any) -> list:
        return self._collective("allgather", payload)

    def send_done(self, payload: Any) -> None:
        self.conn.send(("done", self.rank, payload))

    def send_error(self, exc_type: str, traceback_text: str) -> None:
        self.conn.send(("error", self.rank, exc_type, traceback_text))


@dataclass
class _PendingOp:
    root: int
    contributions: dict[int, Any]


def _reply(op: str, pending: _PendingOp, size: int) -> dict[int, Any]:
    """Compute each rank's reply for a completed collective."""
    if op == "barrier":
        return {rank: None for rank in range(size)}
    if op == "gather":
        ordered = [pending.contributions[r] for r in range(size)]
        return {
            rank: (ordered if rank == pending.root else None)
            for rank in range(size)
        }
    if op == "bcast":
        value = pending.contributions[pending.root]
        return {rank: value for rank in range(size)}
    if op == "allgather":
        ordered = [pending.contributions[r] for r in range(size)]
        return {rank: ordered for rank in range(size)}
    raise ProtocolError(f"unknown collective op {op!r}")


def serve_control_plane(
    conns: list[Connection],
    processes: list,
    *,
    timeout_seconds: float | None = None,
) -> dict[int, Any]:
    """Drive the collective hub until every worker reports done.

    ``conns[rank]`` is the driver end of rank's pipe; ``processes[rank]``
    the worker process (anything with ``is_alive()`` and ``exitcode``).
    Returns ``{rank: done_payload}``.  Raises
    :class:`~repro.parallel.errors.WorkerCrashedError` when a pipe hits
    EOF or a process dies with messages outstanding,
    :class:`~repro.parallel.errors.WorkerFailedError` when a worker
    reports an exception (re-raised by the caller from the payload), and
    :class:`~repro.parallel.errors.ControlPlaneTimeout` when
    ``timeout_seconds`` passes without any progress.
    """
    from .errors import WorkerFailedError

    size = len(conns)
    rank_of = {id(conn): rank for rank, conn in enumerate(conns)}
    active: set[int] = set(range(size))
    done: dict[int, Any] = {}
    pending: dict[tuple[str, int], _PendingOp] = {}
    last_progress = time.perf_counter()

    def phase() -> str:
        if pending:
            ops = ", ".join(f"{op}#{seq}" for op, seq in sorted(pending))
            return f"collectives pending: {ops}"
        return "between collectives"

    def crash(rank: int) -> WorkerCrashedError:
        proc = processes[rank]
        exitcode = getattr(proc, "exitcode", None)
        return WorkerCrashedError(rank, exitcode, phase())

    while active:
        ready = wait([conns[r] for r in active], timeout=_POLL_SECONDS)
        now = time.perf_counter()
        if not ready:
            for rank in sorted(active):
                proc = processes[rank]
                if not proc.is_alive() and not conns[rank].poll():
                    raise crash(rank)
            if (
                timeout_seconds is not None
                and now - last_progress > timeout_seconds
            ):
                raise ControlPlaneTimeout(now - last_progress, phase())
            continue
        last_progress = now
        for conn in ready:
            rank = rank_of[id(conn)]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                raise crash(rank) from None
            kind = msg[0]
            if kind == "done":
                done[msg[1]] = msg[2]
                active.discard(msg[1])
            elif kind == "error":
                raise WorkerFailedError(msg[1], msg[2], msg[3])
            elif kind == "coll":
                _, op, seq, sender, root, payload = msg
                key = (op, seq)
                slot = pending.get(key)
                if slot is None:
                    slot = pending[key] = _PendingOp(root=root, contributions={})
                elif slot.root != root:
                    raise ProtocolError(
                        f"collective {op}#{seq}: rank {sender} named root "
                        f"{root}, earlier ranks named {slot.root}"
                    )
                if sender in slot.contributions:
                    raise ProtocolError(
                        f"collective {op}#{seq}: duplicate contribution "
                        f"from rank {sender}"
                    )
                slot.contributions[sender] = payload
                if len(slot.contributions) == size:
                    del pending[key]
                    replies = _reply(op, slot, size)
                    for peer, reply in replies.items():
                        conns[peer].send(reply)
            else:
                raise ProtocolError(f"unknown control message kind {kind!r}")
    if pending:
        ops = ", ".join(f"{op}#{seq}" for op, seq in sorted(pending))
        raise ProtocolError(
            f"all workers reported done but collectives never completed: {ops}"
        )
    return done
