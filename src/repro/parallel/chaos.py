"""Deterministic process-level chaos injection for the real backend.

The simulated substrate got its fault story in :mod:`repro.simnet.faults`:
a frozen, seeded :class:`~repro.simnet.faults.FaultPlan` that the engine
consults at delivery time.  This module is the real-backend counterpart.
The faults are now *operating-system* faults — an actual ``SIGKILL``, a
rank that genuinely stops answering its pipe, a hub that stalls before a
reply — but the discipline is identical: a frozen :class:`RealFaultPlan`
built from the same comma-separated ``key=value`` spec grammar, fully
determined by its schedule entries and one seed, consulted behind a
single ``chaos is not None`` guard so the no-chaos path stays
bit-identical to the PR-9 goldens.

Fault classes:

* ``kill=RANK@STEP[:JOB]`` — the worker SIGKILLs itself when it reaches
  the named step boundary, on the job's **first attempt only** (a
  transient fault: the retry layer's respawned generation sails through).
  ``STEP`` is a step label (``5-exchange``) or its 1-based index; an
  optional ``:JOB`` confines the kill to one pool job id.
* ``poison=RANK`` — the rank dies at the first step boundary of **every**
  attempt of every job: a persistent fault no retry can outwait.  This is
  what drives survivor-degraded recovery — after ``degrade_after``
  crashes the backend excludes the rank and re-plans at reduced p.
* ``hang=RANK@OP[:JOB]`` — instead of entering its first collective of
  type ``OP`` (``barrier``/``gather``/``bcast``/``allgather``), the rank
  sleeps until terminated (first attempt only).  No process dies, so only
  the control plane's per-phase deadline can convert this into a typed,
  rank-attributed :class:`~repro.parallel.errors.ControlPlaneTimeout`.
* ``delay=P[:SPIKE]`` — the hub sleeps ``SPIKE`` seconds (default 5 ms)
  before each collective reply with probability ``P``, drawn from a rng
  seeded per ``(plan seed, job, attempt)`` so a replay injects the same
  spikes.  Exercises the pipe-star under latency jitter.
* ``mute=RANK`` — the rank sends no step-boundary heartbeats.  Sorting is
  unaffected; crash *detection* degrades to "no heartbeat received",
  which is exactly the diagnostics path this fault exists to test.
* ``slow=RANKxMULT`` — the rank sleeps ``(MULT - 1) x`` each step's
  measured duration at the following boundary, stretching its compute
  without touching the data path (straggler, not failure).

Worker-side decisions are pure schedule lookups (no rng in the worker),
so kills and hangs land on exactly the planned step of the planned rank
every time; only the hub's delay spikes are stochastic, and those are
seeded.  Chaos state addresses ranks by their **original** rank ids even
inside a survivor-degraded re-plan (the backend ships the survivor→rank
mapping on the job spec), so a poisoned rank stays poisoned under any
renumbering and a degraded generation is not re-killed by schedule
entries aimed at ranks that are no longer present.

Like the rest of ``repro.parallel``, this module reads the wall clock
and sleeps by design — it is the one library package exempt from
repro-lint's R002 realtime rule.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..core.sorter_labels import STEP_LABELS

#: Collective ops a ``hang=`` entry may name (the WorkerLink vocabulary).
COLLECTIVE_OPS = ("barrier", "gather", "bcast", "allgather")


def _parse_step(token: str) -> str:
    """A step label, given either canonically or as its 1-based index."""
    if token in STEP_LABELS:
        return token
    try:
        index = int(token)
    except ValueError:
        index = 0
    if 1 <= index <= len(STEP_LABELS):
        return STEP_LABELS[index - 1]
    raise ValueError(
        f"unknown step {token!r} (want one of {list(STEP_LABELS)} or 1..{len(STEP_LABELS)})"
    )


def _parse_target(token: str, what: str) -> tuple[int | None, int, str]:
    """Parse ``RANK@WHERE[:JOB]`` into ``(job_or_None, rank, where)``."""
    job: int | None = None
    if ":" in token:
        token, job_text = token.split(":", 1)
        job = int(job_text)
    if "@" not in token:
        raise ValueError(f"{what} wants RANK@{'STEP' if what == 'kill' else 'OP'}[:JOB], got {token!r}")
    rank_text, where = token.split("@", 1)
    return job, int(rank_text), where


@dataclass(frozen=True)
class RealFaultPlan:
    """A frozen, seeded schedule of process-level faults.

    Hashable on purpose (all-tuple fields), mirroring
    :class:`~repro.simnet.faults.FaultPlan`: two runs handed equal plans
    inject equal faults.  Build one with :meth:`from_spec` or the
    :func:`kill_one_per_job` helper; activate it either explicitly
    (``ProcessBackend(chaos=plan)``) or ambiently via
    :func:`inject_real_faults`.
    """

    seed: int = 0
    #: ``(job_id | None, rank, step_label)`` — SIGKILL at that step
    #: boundary on the job's first attempt (``None`` job = every job).
    kills: tuple[tuple[int | None, int, str], ...] = ()
    #: Ranks that die at the first step boundary of *every* attempt.
    poisoned: tuple[int, ...] = ()
    #: ``(job_id | None, rank, op)`` — sleep instead of entering the
    #: first collective of that op (first attempt only).
    hangs: tuple[tuple[int | None, int, str], ...] = ()
    #: Probability the hub delays any one collective reply.
    delay_probability: float = 0.0
    #: Seconds of injected delay per spiked reply.
    delay_spike_seconds: float = 0.005
    #: Ranks whose step-boundary heartbeats are suppressed.
    muted: tuple[int, ...] = ()
    #: ``(rank, multiplier)`` — stretch the rank's step durations.
    slow: tuple[tuple[int, float], ...] = ()
    #: How long a hung rank sleeps before giving up on being terminated.
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.delay_probability <= 1.0:
            raise ValueError("delay_probability must be in [0, 1]")
        if self.delay_spike_seconds < 0.0:
            raise ValueError("delay_spike_seconds must be >= 0")
        for job, rank, step in self.kills:
            if rank < 0 or (job is not None and job < 0):
                raise ValueError(f"kill entry has negative rank/job: {(job, rank, step)}")
            _parse_step(step)
        for job, rank, op in self.hangs:
            if op not in COLLECTIVE_OPS:
                raise ValueError(f"unknown collective op {op!r} (want one of {list(COLLECTIVE_OPS)})")
            if rank < 0 or (job is not None and job < 0):
                raise ValueError(f"hang entry has negative rank/job: {(job, rank, op)}")
        if any(rank < 0 for rank in self.poisoned) or any(rank < 0 for rank in self.muted):
            raise ValueError("poison/mute ranks must be >= 0")
        for rank, mult in self.slow:
            if rank < 0 or mult < 1.0:
                raise ValueError(f"slow entry wants rank >= 0 and multiplier >= 1, got {(rank, mult)}")

    # ------------------------------------------------------------ parsing

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "RealFaultPlan":
        """Parse the CLI grammar (see module docstring) into a plan.

        Comma-separated ``key=value`` tokens; repeated ``kill``/``poison``/
        ``hang``/``mute``/``slow`` tokens accumulate.  Examples::

            kill=2@5-exchange
            kill=1@3:0,kill=2@5:1,delay=0.2:0.01
            poison=3,slow=1x2.5,mute=0
        """
        kills: list[tuple[int | None, int, str]] = []
        poisoned: list[int] = []
        hangs: list[tuple[int | None, int, str]] = []
        muted: list[int] = []
        slow: list[tuple[int, float]] = []
        kwargs: dict = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ValueError(f"bad chaos token {token!r} (want key=value)")
            key, value = token.split("=", 1)
            key = key.strip()
            if key == "kill":
                job, rank, step = _parse_target(value, "kill")
                kills.append((job, rank, _parse_step(step)))
            elif key == "poison":
                poisoned.append(int(value))
            elif key == "hang":
                job, rank, op = _parse_target(value, "hang")
                hangs.append((job, rank, op))
            elif key == "delay":
                if ":" in value:
                    prob_text, spike_text = value.split(":", 1)
                    kwargs["delay_spike_seconds"] = float(spike_text)
                else:
                    prob_text = value
                kwargs["delay_probability"] = float(prob_text)
            elif key == "mute":
                muted.append(int(value))
            elif key == "slow":
                if "x" not in value:
                    raise ValueError(f"slow wants RANKxMULT, got {value!r}")
                rank_text, mult_text = value.split("x", 1)
                slow.append((int(rank_text), float(mult_text)))
            else:
                raise ValueError(f"unknown chaos key {key!r}")
        return cls(
            seed=seed,
            kills=tuple(kills),
            poisoned=tuple(poisoned),
            hangs=tuple(hangs),
            muted=tuple(muted),
            slow=tuple(slow),
            **kwargs,
        )

    def describe(self) -> str:
        """One line for reports and logs."""
        parts = [f"seed={self.seed}"]
        if self.kills:
            parts.append(f"kills={len(self.kills)}")
        if self.poisoned:
            parts.append(f"poisoned={list(self.poisoned)}")
        if self.hangs:
            parts.append(f"hangs={len(self.hangs)}")
        if self.delay_probability:
            parts.append(
                f"delay={self.delay_probability:g}:{self.delay_spike_seconds:g}s"
            )
        if self.muted:
            parts.append(f"muted={list(self.muted)}")
        if self.slow:
            parts.append("slow=" + ",".join(f"{r}x{m:g}" for r, m in self.slow))
        return "RealFaultPlan(" + ", ".join(parts) + ")"

    # --------------------------------------------------------- per-attempt

    def worker_state(
        self, rank: int, job_id: int, attempt: int
    ) -> "WorkerChaosState":
        """The (pure lookup) decisions for one worker on one attempt.

        ``rank`` is the *original* rank id — under a survivor-degraded
        re-plan the backend maps the worker's slot back to its original
        identity before calling this, so schedule entries keep meaning
        the same physical participant across renumberings.
        """
        kill_step = None
        if rank in self.poisoned:
            kill_step = STEP_LABELS[0]
        elif attempt == 0:
            for job, target, step in self.kills:
                if target == rank and (job is None or job == job_id):
                    kill_step = step
                    break
        hang_op = None
        if attempt == 0:
            for job, target, op in self.hangs:
                if target == rank and (job is None or job == job_id):
                    hang_op = op
                    break
        mult = 1.0
        for target, multiplier in self.slow:
            if target == rank:
                mult = max(mult, multiplier)
        return WorkerChaosState(
            kill_step=kill_step,
            hang_op=hang_op,
            muted=rank in self.muted,
            slow_multiplier=mult,
            hang_seconds=self.hang_seconds,
        )

    def hub_state(self, job_id: int, attempt: int) -> "HubChaosState | None":
        """Seeded hub-side delay-spike state, or None when delays are off."""
        if self.delay_probability <= 0.0:
            return None
        return HubChaosState(
            probability=self.delay_probability,
            spike_seconds=self.delay_spike_seconds,
            rng=np.random.default_rng([self.seed, job_id, attempt]),
        )

    def targets_rank(self, rank: int) -> bool:
        """Does any schedule entry address ``rank``?  (Validation aid.)"""
        return (
            rank in self.poisoned
            or rank in self.muted
            or any(target == rank for _, target, _ in self.kills)
            or any(target == rank for _, target, _ in self.hangs)
            or any(target == rank for target, _ in self.slow)
        )


class WorkerChaosState:
    """Per-(rank, job, attempt) fault decisions, consulted in the worker.

    Created fresh for every attempt from the frozen plan; holds the tiny
    amount of mutable state the faults need (the previous step boundary's
    clock reading for the slow multiplier, the one-shot hang flag).  An
    attached :class:`~repro.parallel.tracing.WorkerTracer` receives a
    fault event for every injection that leaves the process alive.
    """

    __slots__ = (
        "kill_step",
        "hang_op",
        "muted",
        "slow_multiplier",
        "hang_seconds",
        "tracer",
        "_last_boundary",
    )

    def __init__(
        self,
        *,
        kill_step: str | None,
        hang_op: str | None,
        muted: bool,
        slow_multiplier: float,
        hang_seconds: float,
    ) -> None:
        self.kill_step = kill_step
        self.hang_op = hang_op
        self.muted = muted
        self.slow_multiplier = slow_multiplier
        self.hang_seconds = hang_seconds
        self.tracer = None
        self._last_boundary: float | None = None

    def at_step_boundary(self, step: str) -> None:
        """Consulted by the worker at every step-boundary heartbeat."""
        now = time.perf_counter()  # repro: noqa[R002] — real backend: slow-rank pauses scale measured step durations
        if self.slow_multiplier > 1.0 and self._last_boundary is not None:
            pause = (self.slow_multiplier - 1.0) * (now - self._last_boundary)
            if pause > 0.0:
                if self.tracer is not None:
                    self.tracer.fault("slow", f"{step}: +{pause * 1e3:.2f}ms")
                time.sleep(pause)
        self._last_boundary = time.perf_counter()  # repro: noqa[R002] — real backend: slow-rank pauses scale measured step durations
        if step == self.kill_step:
            # A real fail-stop: no atexit hooks, no send_error, the pipe
            # simply hits EOF — exactly what the hub's liveness watch and
            # the retry layer exist to absorb.
            os.kill(os.getpid(), signal.SIGKILL)

    def before_collective(self, op: str) -> None:
        """Consulted by WorkerLink before posting any collective."""
        if op == self.hang_op:
            self.hang_op = None
            if self.tracer is not None:
                self.tracer.fault("hang", f"before {op}")
            time.sleep(self.hang_seconds)

    def note_muted(self, step: str) -> None:
        if self.tracer is not None:
            self.tracer.fault("mute", f"suppressed heartbeat at {step}")


class HubChaosState:
    """Seeded delay-spike injection on the hub's collective replies."""

    __slots__ = ("probability", "spike_seconds", "_rng", "spikes")

    def __init__(self, *, probability: float, spike_seconds: float, rng) -> None:
        self.probability = probability
        self.spike_seconds = spike_seconds
        self._rng = rng
        #: How many replies were actually delayed (observability).
        self.spikes = 0

    def maybe_delay_reply(self) -> None:
        if self._rng.random() < self.probability:
            self.spikes += 1
            time.sleep(self.spike_seconds)


# ------------------------------------------------------- ambient plan scope

_ACTIVE_PLANS: list[RealFaultPlan] = []


def active_real_fault_plan() -> RealFaultPlan | None:
    """The innermost ambient plan, or None (the common case)."""
    return _ACTIVE_PLANS[-1] if _ACTIVE_PLANS else None


@contextmanager
def inject_real_faults(plan: RealFaultPlan):
    """Scope an ambient chaos plan over every process-backend sort.

    Mirrors :func:`repro.simnet.faults.inject_faults`: any
    ``ProcessBackend`` constructed or run inside the scope without an
    explicit ``chaos=`` argument picks the plan up (and, unless it was
    given an explicit ``retry=``, arms a default
    :class:`~repro.parallel.backend.RetryPolicy` — chaos without recovery
    would just convert every planned fault into a lost job).
    """
    _ACTIVE_PLANS.append(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLANS.remove(plan)


# ------------------------------------------------------- canned schedules


def kill_one_per_job(
    num_jobs: int,
    num_ranks: int,
    *,
    step: str = "5-exchange",
    seed: int = 0,
) -> RealFaultPlan:
    """The CI matrix plan: every job loses one worker, round-robin.

    Job ``j`` SIGKILLs rank ``j % num_ranks`` at ``step`` on its first
    attempt; with a :class:`~repro.parallel.backend.RetryPolicy` attached
    every job must recover on attempt 1 at full width, bit-identical to
    the oracle.
    """
    label = _parse_step(step)
    kills = tuple((job, job % num_ranks, label) for job in range(num_jobs))
    return RealFaultPlan(seed=seed, kills=kills)
