"""Counts-matrix exchange layout: the one source of shm run offsets.

The zero-copy all-to-all of the process backend works because every
(src, dst) run of keys has exactly one home in the shared exchange
stream, computable by every rank from the allgathered counts matrix
alone: destination ``dst``'s region starts at the exclusive prefix sum
of per-destination totals (``rank_base``), and within that region the
runs are laid out back to back in source order (``col_starts``).  The
regions are disjoint by construction, which is the invariant that lets
``p`` processes write concurrently with zero locks — and the invariant
ShmSan (:mod:`repro.parallel.shmsan`) checks at runtime.

Every consumer of exchange offsets goes through this module: the worker
loop computes its write positions with :meth:`ExchangeLayout.run_offset`,
the driver carves per-rank output regions with
:meth:`ExchangeLayout.region`, and the happens-before analyzer
(:mod:`repro.checks.hb`) recomputes the expected intervals from the same
arithmetic.  repro-lint rule R011 enforces the funnel statically: a
prefix sum over a counts matrix anywhere else in the real-parallel
backend — a second copy of this arithmetic waiting to drift — is flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ExchangeLayout:
    """Element offsets of every (src, dst) run in the exchange stream."""

    #: ``counts[src, dst]`` = keys shipped src -> dst.
    counts: np.ndarray
    #: ``rank_base[dst]`` = first element of dst's region; ``rank_base[p]``
    #: is the total stream length (exclusive prefix of per-dst totals).
    rank_base: np.ndarray
    #: ``col_starts[src, dst]`` = exclusive prefix within dst's region, by
    #: source — the run's offset relative to ``rank_base[dst]``.
    col_starts: np.ndarray
    #: ``recv_totals[dst]`` = total keys landing at dst (column sums).
    recv_totals: np.ndarray

    @property
    def size(self) -> int:
        return int(self.counts.shape[0])

    @property
    def total(self) -> int:
        """Total elements in the exchange stream (all runs together)."""
        return int(self.rank_base[-1])

    def run_offset(self, src: int, dst: int) -> int:
        """First element of the (src, dst) run in the exchange stream."""
        return int(self.rank_base[dst] + self.col_starts[src, dst])

    def run_length(self, src: int, dst: int) -> int:
        """Elements in the (src, dst) run."""
        return int(self.counts[src, dst])

    def region(self, rank: int) -> tuple[int, int]:
        """``(base, length)`` of rank's own receive region."""
        return int(self.rank_base[rank]), int(self.recv_totals[rank])

    def run_bounds(self, rank: int) -> np.ndarray:
        """Prefix bounds of each source's run within rank's region.

        ``size + 1`` entries relative to the region base: source ``s``'s
        run spans ``[bounds[s], bounds[s + 1])`` — the flat k-way merge's
        input layout, and the provenance column boundaries.
        """
        bounds = np.zeros(self.size + 1, dtype=np.int64)
        np.cumsum(self.counts[:, rank], out=bounds[1:])
        return bounds


def exchange_layout(counts_matrix: np.ndarray) -> ExchangeLayout:
    """Derive the run layout from a ``(p, p)`` counts matrix.

    Pure integer prefix sums — identical on every rank that holds the same
    matrix, which is what makes the concurrent writes coordinate-free.
    """
    counts = np.asarray(counts_matrix, dtype=np.int64)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ValueError(f"counts matrix must be square, got {counts.shape}")
    size = counts.shape[0]
    recv_totals = counts.sum(axis=0)
    rank_base = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(recv_totals, out=rank_base[1:])
    col_starts = np.zeros_like(counts)
    np.cumsum(counts[:-1], axis=0, out=col_starts[1:])
    return ExchangeLayout(
        counts=counts,
        rank_base=rank_base,
        col_starts=col_starts,
        recv_totals=recv_totals,
    )
