"""Cross-process shared-memory arena: pooled blocks leased as numpy arrays.

This is :class:`repro.core.scratch.ScratchArena`'s idea taken across the
process boundary.  The driver (parent) owns a pool of
:mod:`multiprocessing.shared_memory` segments; data-plane buffers — input
blocks, the all-to-all exchange streams, merged output — are *leased* as
numpy views of pooled segments and returned wholesale with
:meth:`SharedArena.release_all` once a sort completes.  Segments grow
geometrically and are reused across sorts, so a backend that sorts many
datasets performs no shm system calls in steady state.

A lease is described by a small picklable :class:`ShmLease` (segment name,
dtype, length) that travels to workers over the control pipe; workers map
the same physical pages with :func:`attach` — no data ever crosses a pipe.

Two invariants make the arena the persistent pool's warm store (PR 9):
segments survive ``release_all`` (only :meth:`SharedArena.close` unlinks),
and a named segment is **never resized** — growth allocates a new segment
under a new name.  A pooled worker can therefore cache its attachments by
segment name across jobs (:class:`repro.parallel.worker.SegmentCache`):
whatever leases a later job's specs describe, a cached name still maps
the right pages, and steady-state jobs run with zero shm system calls on
both sides of the process boundary.

Ownership contract: the parent creates and unlinks every segment; workers
only ever attach and close.  On POSIX the resource-tracker process is
shared between parent and workers (its fd travels through both fork and
spawn), so a worker's attach re-registering the segment is a harmless
set-add and the parent's ``unlink`` performs the single real unregister —
workers must never call ``resource_tracker.unregister`` themselves, which
would strip the parent's leak protection and make its unlink race the
tracker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

#: Smallest segment the arena allocates (bytes); avoids churn from tiny
#: leases the way ``ScratchArena.MIN_BLOCK_ELEMENTS`` does in-process.
MIN_SEGMENT_BYTES = 1 << 16


@dataclass(frozen=True)
class ShmLease:
    """Picklable descriptor of one leased numpy region.

    ``name`` identifies the shared segment; the region is ``length``
    elements of ``dtype`` starting at ``offset_bytes``.  Sending a lease to
    a worker conveys *access*, not ownership.
    """

    name: str
    dtype: np.dtype
    length: int
    offset_bytes: int = 0

    @property
    def nbytes(self) -> int:
        return int(self.length) * np.dtype(self.dtype).itemsize


@dataclass
class _Segment:
    shm: shared_memory.SharedMemory
    in_use: bool = False

    @property
    def capacity(self) -> int:
        return self.shm.size


class SharedArena:
    """Parent-side pool of shared-memory segments with lease semantics.

    Mirrors the in-process scratch arena: ``lease(n, dtype)`` hands out a
    region backed by a pooled segment (picking the smallest free segment
    that fits, creating one with geometric growth otherwise) and
    ``release_all`` returns every lease without freeing pages.  ``close``
    unlinks everything; the arena is also a context manager.
    """

    def __init__(self) -> None:
        self._segments: list[_Segment] = []
        #: Real shm segment creations so far (tests pin pooling on this).
        self.allocations = 0
        #: Leases handed out since the last ``release_all``.
        self.live_leases = 0
        #: Bytes currently out on lease (resets with ``release_all``).
        self.leased_bytes = 0
        #: Observability hook: ``on_sample(name, value)`` fires on lease
        #: grants, segment growth, and ``release_all`` (None when untraced
        #: — the repository's guard pattern).
        self.on_sample = None
        self._closed = False

    # ------------------------------------------------------------ leasing

    def lease(self, length: int, dtype) -> ShmLease:
        """Lease ``length`` elements of ``dtype`` from pooled shm storage.

        Contents are uninitialized, like ``np.empty``.  The returned
        descriptor may be pickled to workers; pair it with :func:`attach`
        (worker) or :meth:`view` (parent) to get the numpy array.
        """
        if self._closed:
            raise ValueError("arena is closed")
        if length < 0:
            raise ValueError("lease length must be >= 0")
        dtype = np.dtype(dtype)
        nbytes = max(int(length) * dtype.itemsize, 1)
        best: _Segment | None = None
        for seg in self._segments:
            if not seg.in_use and seg.capacity >= nbytes:
                if best is None or seg.capacity < best.capacity:
                    best = seg
        if best is None:
            largest = max((s.capacity for s in self._segments), default=0)
            capacity = max(nbytes, 2 * largest, MIN_SEGMENT_BYTES)
            best = _Segment(shared_memory.SharedMemory(create=True, size=capacity))
            self.allocations += 1
            self._segments.append(best)
            if self.on_sample is not None:
                self.on_sample("arena.pooled_bytes", float(self.pooled_bytes()))
        best.in_use = True
        self.live_leases += 1
        self.leased_bytes += nbytes
        if self.on_sample is not None:
            self.on_sample("arena.leased_bytes", float(self.leased_bytes))
        return ShmLease(name=best.shm.name, dtype=dtype, length=int(length))

    def view(self, lease: ShmLease) -> np.ndarray:
        """Parent-side numpy view of a lease issued by this arena."""
        for seg in self._segments:
            if seg.shm.name == lease.name:
                return np.ndarray(
                    lease.length,
                    dtype=np.dtype(lease.dtype),
                    buffer=seg.shm.buf,
                    offset=lease.offset_bytes,
                )
        raise KeyError(f"lease names unknown segment {lease.name!r}")

    def release_all(self) -> None:
        """Return every lease to the pool (segments stay mapped)."""
        for seg in self._segments:
            seg.in_use = False
        self.live_leases = 0
        self.leased_bytes = 0
        if self.on_sample is not None:
            self.on_sample("arena.leased_bytes", 0.0)

    def pooled_bytes(self) -> int:
        """Total bytes of shared storage the arena keeps alive."""
        return sum(s.capacity for s in self._segments)

    # ------------------------------------------------------------ lifetime

    def close(self) -> None:
        """Unmap and unlink every segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments:
            try:
                seg.shm.close()
                seg.shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self.live_leases = 0
        self.leased_bytes = 0

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort leak guard
        try:
            self.close()
        except Exception:  # repro: noqa[R006] — raising from __del__ at interpreter teardown is worse than a leaked segment the tracker reaps
            pass


@dataclass
class AttachedLease:
    """Worker-side mapping of a :class:`ShmLease`.

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory` handle
    alive for as long as ``array`` is in use; ``close`` unmaps (never
    unlinks — the parent owns the pages).
    """

    array: np.ndarray
    _shm: shared_memory.SharedMemory = field(repr=False)

    def close(self) -> None:
        self.array = None  # drop the buffer reference before unmapping
        self._shm.close()


def attach(lease: ShmLease) -> AttachedLease:
    """Map an existing lease in this (worker) process.

    Attaching re-registers the segment with the (shared) resource tracker;
    that is a set-add no-op, and deliberately left in place — see the
    ownership contract in the module docstring.
    """
    shm = shared_memory.SharedMemory(name=lease.name)
    array = np.ndarray(
        lease.length,
        dtype=np.dtype(lease.dtype),
        buffer=shm.buf,
        offset=lease.offset_bytes,
    )
    return AttachedLease(array=array, _shm=shm)
