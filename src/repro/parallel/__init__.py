"""Real-parallel execution backend for the six-step sample sort.

Where :mod:`repro.simnet` runs the paper's algorithm on a deterministic
virtual-time simulator, this package runs it on real hardware: one worker
process per rank, the data plane in shared memory, the control plane over
pipes.  The same step implementations produce bit-identical partitions on
both substrates; only the clock differs (virtual vs wall).

Layout:

* :mod:`repro.parallel.arena` — cross-process shared-memory arena with
  pooled, leased numpy blocks (``ScratchArena`` across processes);
* :mod:`repro.parallel.collectives` — pipe-based barrier / gather /
  bcast / allgather with a liveness-watching driver hub;
* :mod:`repro.parallel.worker` — the persistent per-rank job loop: the
  six steps, the zero-copy shm all-to-all exchange, the warm segment
  cache, and the splitter-cache probe protocol;
* :mod:`repro.parallel.backend` — the backend abstraction
  (:class:`ProcessBackend` — since PR 9 a persistent worker pool with a
  :class:`~repro.parallel.backend.SplitterCache` —
  :class:`SimnetBackend`, ambient selection by name or instance);
* :mod:`repro.parallel.chaos` — deterministic process-level fault
  injection (:class:`RealFaultPlan`: seeded kills, hangs, reply delay
  spikes, heartbeat muting, slow ranks) mirroring the simnet
  ``FaultPlan`` grammar, paired with job retry
  (:class:`~repro.parallel.backend.RetryPolicy`) and survivor-degraded
  recovery on the :class:`ProcessBackend`;
* :mod:`repro.parallel.errors` — typed failures (worker crash, remote
  exception, control-plane timeout, retry exhaustion) in place of hangs;
* :mod:`repro.parallel.layout` — the counts-matrix exchange layout: the
  single source of every (src, dst) run's offset in the shm stream;
* :mod:`repro.parallel.shmsan` — ShmSan, the happens-before race
  detector for the shm data plane (access recording, barrier-epoch
  analysis via :mod:`repro.checks.hb`, seeded mutations);
* :mod:`repro.parallel.tracing` — cross-process observability: per-worker
  event recording, the clock-offset handshake, parent-side trace merging
  into the :mod:`repro.obs` schema, and the live-progress heartbeat sink.

This package reads the real clock (``time.perf_counter``) on purpose —
measured wall time is its product — but it is *not* exempt from
repro-lint: every legitimate timing site carries a per-line
``# repro: noqa[R002]``, and the parallel-aware rules R009–R012 (lease
scoping, arena-view retention, offsets-through-the-layout-helper, no
ad-hoc multiprocessing primitives outside :mod:`~repro.parallel.collectives`)
apply here like everywhere else in the library.
"""

from .arena import AttachedLease, SharedArena, ShmLease, attach
from .backend import (
    BACKENDS,
    BackendRun,
    ExecutionBackend,
    ProcessBackend,
    ProcessRunHandle,
    RetryPolicy,
    SimnetBackend,
    SplitterCache,
    default_backend,
    get_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from .layout import ExchangeLayout, exchange_layout
from .shmsan import (
    MUTATIONS,
    ShmSan,
    ShmSanReport,
    active_shm_sanitizer,
    shm_sanitize,
)
from .tracing import (
    WorkerTrace,
    WorkerTracer,
    ambient_progress,
    estimate_clock_offset,
    merge_worker_traces,
    peak_rss_bytes,
    use_progress,
)
from .chaos import (
    RealFaultPlan,
    active_real_fault_plan,
    inject_real_faults,
    kill_one_per_job,
)
from .errors import (
    ControlPlaneTimeout,
    JobAbortedError,
    ParallelBackendError,
    PoolClosedError,
    ProtocolError,
    WorkerCrashedError,
    WorkerFailedError,
)
from .worker import JobSpec, SegmentCache, WorkerReport

__all__ = [
    "AttachedLease",
    "BACKENDS",
    "BackendRun",
    "ControlPlaneTimeout",
    "ExchangeLayout",
    "ExecutionBackend",
    "JobAbortedError",
    "JobSpec",
    "MUTATIONS",
    "ParallelBackendError",
    "PoolClosedError",
    "ProcessBackend",
    "ProcessRunHandle",
    "ProtocolError",
    "RealFaultPlan",
    "RetryPolicy",
    "SegmentCache",
    "SharedArena",
    "ShmLease",
    "ShmSan",
    "ShmSanReport",
    "SimnetBackend",
    "SplitterCache",
    "WorkerCrashedError",
    "WorkerFailedError",
    "WorkerReport",
    "WorkerTrace",
    "WorkerTracer",
    "active_real_fault_plan",
    "active_shm_sanitizer",
    "ambient_progress",
    "attach",
    "default_backend",
    "estimate_clock_offset",
    "exchange_layout",
    "get_backend",
    "inject_real_faults",
    "kill_one_per_job",
    "merge_worker_traces",
    "peak_rss_bytes",
    "resolve_backend",
    "set_default_backend",
    "shm_sanitize",
    "use_backend",
    "use_progress",
]
