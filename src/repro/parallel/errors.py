"""Typed failures of the real-parallel execution backend.

Everything a process-backend run can do wrong surfaces as one of these —
never as a hang, and never as a bare ``BrokenPipeError`` deep inside
``multiprocessing``.  The control-plane hub watches worker liveness while
serving collectives, so a worker that dies mid-protocol turns into a
:class:`WorkerCrashedError` naming the rank, and a worker that raised is
re-reported as a :class:`WorkerFailedError` carrying the remote traceback.
"""

from __future__ import annotations


class ParallelBackendError(RuntimeError):
    """Base class for process-backend failures."""


def _beat_clause(last_step: str | None, heartbeat_age: float | None) -> str:
    """Render a rank's last heartbeat for an error message."""
    if last_step is None:
        return "no heartbeat received"
    if heartbeat_age is None:
        return f"last heartbeat at step {last_step!r}"
    return f"last heartbeat at step {last_step!r}, {heartbeat_age:.1f}s before detection"


class WorkerCrashedError(ParallelBackendError):
    """A worker process died without reporting a result or an error.

    Raised by the control-plane hub when a worker's pipe hits EOF or its
    process exits while collectives are still outstanding — the situation
    that would otherwise deadlock every surviving rank inside a barrier.
    Carries the dead rank's last step-boundary heartbeat (and how long
    before detection it arrived), so a crash reports *which step* the
    worker died in.
    """

    def __init__(
        self,
        rank: int,
        exitcode: int | None,
        phase: str,
        last_step: str | None = None,
        heartbeat_age: float | None = None,
    ):
        self.rank = rank
        self.exitcode = exitcode
        self.phase = phase
        self.last_step = last_step
        self.heartbeat_age = heartbeat_age
        super().__init__(
            f"worker rank {rank} crashed (exitcode {exitcode}) "
            f"during {phase} ({_beat_clause(last_step, heartbeat_age)}); "
            f"remaining workers were terminated"
        )


class WorkerFailedError(ParallelBackendError):
    """A worker raised an exception; the remote traceback rides along."""

    def __init__(
        self,
        rank: int,
        exc_type: str,
        remote_traceback: str,
        last_step: str | None = None,
    ):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        self.last_step = last_step
        beat = "" if last_step is None else f" (last heartbeat at step {last_step!r})"
        super().__init__(
            f"worker rank {rank} failed with {exc_type}{beat}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )


class ControlPlaneTimeout(ParallelBackendError):
    """The hub's wall-clock deadline expired with collectives pending."""

    def __init__(self, waited_seconds: float, pending: str, heartbeats: str = ""):
        self.waited_seconds = waited_seconds
        self.pending = pending
        self.heartbeats = heartbeats
        beats = f"; {heartbeats}" if heartbeats else ""
        super().__init__(
            f"control plane made no progress for {waited_seconds:.1f}s "
            f"({pending}{beats}); terminating workers"
        )


class ProtocolError(ParallelBackendError):
    """A worker sent a control message the hub cannot reconcile."""


class PoolClosedError(ParallelBackendError):
    """A job was dispatched to a retired worker pool.

    Raised by :meth:`~repro.parallel.backend.ProcessBackend.sort_blocks`
    after :meth:`close`/``__exit__`` shut the pool down — distinct from a
    crash (which the pool survives by respawning the next generation):
    a closed pool has also unlinked its arena, so reviving it silently
    would hand out dangling leases.
    """
