"""Typed failures of the real-parallel execution backend.

Everything a process-backend run can do wrong surfaces as one of these —
never as a hang, and never as a bare ``BrokenPipeError`` deep inside
``multiprocessing``.  The control-plane hub watches worker liveness while
serving collectives, so a worker that dies mid-protocol turns into a
:class:`WorkerCrashedError` naming the rank, and a worker that raised is
re-reported as a :class:`WorkerFailedError` carrying the remote traceback.
"""

from __future__ import annotations


class ParallelBackendError(RuntimeError):
    """Base class for process-backend failures.

    Every subclass carries optional *job provenance*: the control-plane
    hub that raises these errors knows ranks and pipes, not jobs, so the
    backend stamps ``job_id`` as the error propagates out of
    ``sort_blocks`` and ``SorterPool.sort_many`` adds ``stream_index`` —
    a mid-stream failure then names exactly which job of the stream died.
    """

    #: Pool job the failure belongs to (``None`` until stamped).
    job_id: int | None = None
    #: Position in a ``SorterPool.sort_many`` stream (``None`` until stamped).
    stream_index: int | None = None

    def annotate_job(
        self, *, job_id: int | None = None, stream_index: int | None = None
    ) -> "ParallelBackendError":
        """Attach job/stream provenance post-hoc; first stamp wins.

        Mutates in place and returns ``self`` so callers can
        ``raise exc.annotate_job(job_id=...)`` without losing the original
        traceback.  The rendered message is extended once per field.
        """
        notes = []
        if job_id is not None and self.job_id is None:
            self.job_id = job_id
            notes.append(f"job {job_id}")
        if stream_index is not None and self.stream_index is None:
            self.stream_index = stream_index
            notes.append(f"stream index {stream_index}")
        if notes and self.args:
            self.args = (f"{self.args[0]} [{', '.join(notes)}]",) + self.args[1:]
        return self


def _beat_clause(last_step: str | None, heartbeat_age: float | None) -> str:
    """Render a rank's last heartbeat for an error message."""
    if last_step is None:
        return "no heartbeat received"
    if heartbeat_age is None:
        return f"last heartbeat at step {last_step!r}"
    return f"last heartbeat at step {last_step!r}, {heartbeat_age:.1f}s before detection"


class WorkerCrashedError(ParallelBackendError):
    """A worker process died without reporting a result or an error.

    Raised by the control-plane hub when a worker's pipe hits EOF or its
    process exits while collectives are still outstanding — the situation
    that would otherwise deadlock every surviving rank inside a barrier.
    Carries the dead rank's last step-boundary heartbeat (and how long
    before detection it arrived), so a crash reports *which step* the
    worker died in.
    """

    def __init__(
        self,
        rank: int,
        exitcode: int | None,
        phase: str,
        last_step: str | None = None,
        heartbeat_age: float | None = None,
    ):
        self.rank = rank
        self.exitcode = exitcode
        self.phase = phase
        self.last_step = last_step
        self.heartbeat_age = heartbeat_age
        super().__init__(
            f"worker rank {rank} crashed (exitcode {exitcode}) "
            f"during {phase} ({_beat_clause(last_step, heartbeat_age)}); "
            f"remaining workers were terminated"
        )


class WorkerFailedError(ParallelBackendError):
    """A worker raised an exception; the remote traceback rides along."""

    def __init__(
        self,
        rank: int,
        exc_type: str,
        remote_traceback: str,
        last_step: str | None = None,
    ):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        self.last_step = last_step
        beat = "" if last_step is None else f" (last heartbeat at step {last_step!r})"
        super().__init__(
            f"worker rank {rank} failed with {exc_type}{beat}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )


class ControlPlaneTimeout(ParallelBackendError):
    """The hub's wall-clock deadline expired with collectives pending.

    Two deadlines feed this error: the global no-progress timeout, and
    (when armed) the per-phase deadline that bounds how long any single
    collective may stay open while *other* traffic keeps flowing — the
    case a hung or muted rank creates.  ``missing_ranks`` names the ranks
    whose contribution never arrived, which lets the retry layer charge
    the failure to a specific rank even though no process died.
    """

    def __init__(
        self,
        waited_seconds: float,
        pending: str,
        heartbeats: str = "",
        missing_ranks: tuple[int, ...] = (),
    ):
        self.waited_seconds = waited_seconds
        self.pending = pending
        self.heartbeats = heartbeats
        self.missing_ranks = tuple(missing_ranks)
        beats = f"; {heartbeats}" if heartbeats else ""
        missing = (
            f"; missing ranks {list(self.missing_ranks)}" if self.missing_ranks else ""
        )
        super().__init__(
            f"control plane made no progress for {waited_seconds:.1f}s "
            f"({pending}{beats}{missing}); terminating workers"
        )


class JobAbortedError(ParallelBackendError):
    """Retries exhausted: the same job failed on every allowed attempt.

    Raised by the retry layer in
    :meth:`~repro.parallel.backend.ProcessBackend.sort_blocks` after a
    :class:`~repro.parallel.backend.RetryPolicy` runs out of attempts
    without the job completing (and, when degradation is enabled, without
    the failures concentrating on a single poisonable rank).  Carries the
    full attempt history — one dict per attempt with ``attempt``,
    ``error``, ``rank``, ``exitcode``, and ``last_step`` (the rank's last
    step-boundary heartbeat) — so postmortems see every generation that
    was burned, not just the final straw.
    """

    def __init__(self, job_id: int, attempts: list[dict] | tuple[dict, ...]):
        self.job_id = job_id
        self.attempts = tuple(attempts)
        history = "; ".join(
            f"attempt {a['attempt']}: {a['error']}"
            f" rank={a['rank']} exitcode={a['exitcode']} last_step={a['last_step']}"
            for a in self.attempts
        )
        super().__init__(
            f"job {job_id} aborted after {len(self.attempts)} failed attempts"
            f" ({history})"
        )


class ProtocolError(ParallelBackendError):
    """A worker sent a control message the hub cannot reconcile."""


class PoolClosedError(ParallelBackendError):
    """A job was dispatched to a retired worker pool.

    Raised by :meth:`~repro.parallel.backend.ProcessBackend.sort_blocks`
    after :meth:`close`/``__exit__`` shut the pool down — distinct from a
    crash (which the pool survives by respawning the next generation):
    a closed pool has also unlinked its arena, so reviving it silently
    would hand out dangling leases.
    """
