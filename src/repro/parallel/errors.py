"""Typed failures of the real-parallel execution backend.

Everything a process-backend run can do wrong surfaces as one of these —
never as a hang, and never as a bare ``BrokenPipeError`` deep inside
``multiprocessing``.  The control-plane hub watches worker liveness while
serving collectives, so a worker that dies mid-protocol turns into a
:class:`WorkerCrashedError` naming the rank, and a worker that raised is
re-reported as a :class:`WorkerFailedError` carrying the remote traceback.
"""

from __future__ import annotations


class ParallelBackendError(RuntimeError):
    """Base class for process-backend failures."""


class WorkerCrashedError(ParallelBackendError):
    """A worker process died without reporting a result or an error.

    Raised by the control-plane hub when a worker's pipe hits EOF or its
    process exits while collectives are still outstanding — the situation
    that would otherwise deadlock every surviving rank inside a barrier.
    """

    def __init__(self, rank: int, exitcode: int | None, phase: str):
        self.rank = rank
        self.exitcode = exitcode
        self.phase = phase
        super().__init__(
            f"worker rank {rank} crashed (exitcode {exitcode}) "
            f"during {phase}; remaining workers were terminated"
        )


class WorkerFailedError(ParallelBackendError):
    """A worker raised an exception; the remote traceback rides along."""

    def __init__(self, rank: int, exc_type: str, remote_traceback: str):
        self.rank = rank
        self.exc_type = exc_type
        self.remote_traceback = remote_traceback
        super().__init__(
            f"worker rank {rank} failed with {exc_type}\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )


class ControlPlaneTimeout(ParallelBackendError):
    """The hub's wall-clock deadline expired with collectives pending."""

    def __init__(self, waited_seconds: float, pending: str):
        self.waited_seconds = waited_seconds
        self.pending = pending
        super().__init__(
            f"control plane made no progress for {waited_seconds:.1f}s "
            f"({pending}); terminating workers"
        )


class ProtocolError(ParallelBackendError):
    """A worker sent a control message the hub cannot reconcile."""
