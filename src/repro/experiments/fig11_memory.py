"""Figure 11: memory consumption of the PGX.D sort on Twitter data.

"Resident Set Size (RSS) is the RAM memory that is allocated for the
process ... Light blue illustrates the total temporary memory usage during
the process except RSS usage, which is allocated during the process and
becomes free at the end."

Peak resident and temporary bytes per machine over the processor sweep.
The reproduced claims: both pools shrink roughly as 1/p; temporary memory
is freed by the end of the run (tracked exactly by the data manager); the
provenance arrays ("keeping previous information of each data's previous
processor and location") dominate the resident pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from .common import ExperimentScale, current_scale, format_table
from .fig8_twitter import TWITTER_MODELED_KEYS, twitter_keys


@dataclass
class Fig11Result:
    processors: list[int]
    resident_bytes: list[int]
    temporary_bytes: list[int]

    def shrinks_with_processors(self) -> bool:
        return self.resident_bytes[-1] < self.resident_bytes[0]

    def scaling_exponent(self) -> float:
        """Fitted slope of log(resident) vs log(p); ~-1 for 1/p scaling."""
        import numpy as np

        x = np.log(np.array(self.processors, dtype=float))
        y = np.log(np.array(self.resident_bytes, dtype=float))
        return float(np.polyfit(x, y, 1)[0])


def run(scale: ExperimentScale | None = None) -> Fig11Result:
    scale = scale or current_scale()
    keys = twitter_keys(scale)
    data_scale = TWITTER_MODELED_KEYS / len(keys)
    resident, temporary = [], []
    for p in scale.processors:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=data_scale,
        )
        result = sorter.sort(keys)
        rss, temp = result.peak_memory_bytes()
        resident.append(rss)
        temporary.append(temp)
        # Temporary pools must be fully drained at run end.
        for proc in result.metrics.processes:
            assert proc.memory.temporary == 0
    return Fig11Result(list(scale.processors), resident, temporary)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [p, rss / 1e6, temp / 1e6, (rss + temp) / 1e6]
        for p, rss, temp in zip(
            result.processors, result.resident_bytes, result.temporary_bytes
        )
    ]
    return format_table(
        ["processors", "rss-MB", "temp-MB", "total-MB"],
        rows,
        title="Figure 11 — peak per-machine memory, Twitter dataset (modeled MB)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
