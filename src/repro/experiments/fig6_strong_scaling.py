"""Figure 6: strong scaling of PGX.D versus Spark.

"Figure 6 shows a better speedup of PGX.D distributed sorting technique
compared to the sorting technique in Spark."

Both engines sort the same one-billion-key modeled datasets over the
processor sweep; speedup is normalized to each engine's own time at the
smallest processor count, exactly as a strong-scaling plot is read.  The
reproduced claims: PGX.D's speedup curve dominates Spark's, and PGX.D's
absolute time beats Spark's at every point (the 2x-3x headline).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.spark.engine import spark_sort_by_key
from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, Series, current_scale, format_table

#: Distribution used for the scaling comparison (shape is distribution-
#: insensitive for PGX.D per Figure 5; uniform keeps Spark's range
#: partitioner out of trouble so the comparison isolates the frameworks).
DISTRIBUTION = "uniform"


@dataclass
class Fig6Result:
    processors: list[int]
    pgxd_seconds: Series
    spark_seconds: Series

    def speedups(self, series: Series) -> list[float]:
        """Speedup relative to the series' smallest processor count."""
        return [series.y[0] / t for t in series.y]

    def ratio_at(self, p: int) -> float:
        i = self.processors.index(p)
        return self.spark_seconds.y[i] / self.pgxd_seconds.y[i]


def run(scale: ExperimentScale | None = None) -> Fig6Result:
    scale = scale or current_scale()
    data = generate(DISTRIBUTION, scale.real_keys, seed=scale.seed, value_range=1 << 20)
    pgxd = Series("pgxd")
    spark = Series("spark")
    for p in scale.processors:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
        )
        r = sorter.sort(data)
        assert r.is_globally_sorted()
        pgxd.add(p, r.elapsed_seconds)
        s = spark_sort_by_key(data, num_executors=p, data_scale=scale.data_scale)
        assert s.is_globally_sorted()
        spark.add(p, s.elapsed_seconds)
    return Fig6Result(list(scale.processors), pgxd, spark)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = []
    for i, p in enumerate(result.processors):
        pg, sp = result.pgxd_seconds.y[i], result.spark_seconds.y[i]
        rows.append(
            [
                p,
                pg,
                sp,
                sp / pg,
                result.pgxd_seconds.y[0] / pg,
                result.spark_seconds.y[0] / sp,
            ]
        )
    return format_table(
        ["processors", "pgxd-s", "spark-s", "spark/pgxd", "pgxd-speedup", "spark-speedup"],
        rows,
        title="Figure 6 — strong scaling, PGX.D vs Spark (uniform, 1B modeled keys)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
