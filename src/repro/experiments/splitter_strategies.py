"""Splitter-strategy comparison: sampling vs histogram refinement.

Extension experiment: the paper resolves the sample-size trade-off by
fixing X = 256KB/p (Figure 9); histogram refinement (HykSort-style,
``repro.core.hist_splitters``) dissolves the trade-off by shipping
fixed-size histograms instead of data.  This experiment compares the two
strategies' load balance, splitter-agreement traffic, and total time across
the Figure-4 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads import DISTRIBUTIONS, generate
from .common import ExperimentScale, current_scale, format_table

PROCESSORS = 16


@dataclass
class SplitterStrategiesResult:
    #: distribution -> strategy -> {"imbalance", "total_s"}.
    rows: dict[str, dict[str, dict[str, float]]]

    def histogram_competitive(self, tolerance: float = 1.3) -> bool:
        """Histogram balance within ``tolerance`` of sampling's, everywhere."""
        for per_strategy in self.rows.values():
            if (
                per_strategy["histogram"]["imbalance"]
                > per_strategy["sample"]["imbalance"] * tolerance
            ):
                return False
        return True


def run(scale: ExperimentScale | None = None) -> SplitterStrategiesResult:
    scale = scale or current_scale()
    p = min(PROCESSORS, max(scale.processors))
    rows: dict[str, dict[str, dict[str, float]]] = {}
    for kind in DISTRIBUTIONS:
        data = generate(kind, scale.real_keys, seed=scale.seed)
        rows[kind] = {}
        for strategy in ("sample", "histogram"):
            sorter = DistributedSorter(
                num_processors=p,
                threads_per_machine=scale.threads,
                data_scale=scale.data_scale,
                splitter_strategy=strategy,
            )
            result = sorter.sort(data)
            assert result.is_globally_sorted()
            rows[kind][strategy] = {
                "imbalance": result.imbalance(),
                "total_s": result.elapsed_seconds,
            }
    return SplitterStrategiesResult(rows)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = []
    for kind, per_strategy in result.rows.items():
        s, h = per_strategy["sample"], per_strategy["histogram"]
        rows.append(
            [kind, s["imbalance"], s["total_s"], h["imbalance"], h["total_s"]]
        )
    return format_table(
        ["distribution", "sample-imb", "sample-s", "hist-imb", "hist-s"],
        rows,
        title=f"Splitter strategies — sampling vs histogram refinement (p={PROCESSORS})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
