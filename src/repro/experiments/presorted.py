"""Presortedness study: the TimSort advantage (extension).

Section II: "TimSort is chosen as a sorting technique in Spark and the
experimental results show that it performs better when the data is
partially sorted."  The paper mentions the property but never measures it
against PGX.D; this experiment does.  PGX.D's quicksort cost is oblivious
to input order, while MiniSpark's TimSort prices by natural-run structure —
so the PGX.D/Spark gap should *narrow* as the input gets more presorted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.spark.engine import spark_sort_by_key
from ..core.api import DistributedSorter
from ..workloads.duplicates import partially_sorted
from .common import ExperimentScale, current_scale, format_table

#: Number of natural runs in the input (1 run = fully sorted).
RUN_COUNTS = (1, 64, 4096, None)  # None = random

MACHINES = 8


@dataclass
class PresortedResult:
    labels: list[str]
    pgxd_seconds: list[float]
    spark_seconds: list[float]

    def ratios(self) -> list[float]:
        return [s / p for p, s in zip(self.pgxd_seconds, self.spark_seconds)]

    def gap_narrows_when_presorted(self) -> bool:
        """Spark/PGX.D at 1 run < Spark/PGX.D on random data."""
        return self.ratios()[0] < self.ratios()[-1]

    def spark_benefits_from_presortedness(self) -> bool:
        return self.spark_seconds[0] < self.spark_seconds[-1]


def run(scale: ExperimentScale | None = None) -> PresortedResult:
    scale = scale or current_scale()
    labels, pgxd_s, spark_s = [], [], []
    for runs in RUN_COUNTS:
        n = scale.real_keys
        effective = runs if runs is not None else max(n // 2, 1)
        labels.append("random" if runs is None else f"{runs} runs")
        data = partially_sorted(n, effective, seed=scale.seed)
        sorter = DistributedSorter(
            num_processors=MACHINES,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        pgxd_s.append(result.elapsed_seconds)
        spark = spark_sort_by_key(
            data, num_executors=MACHINES, data_scale=scale.data_scale
        )
        assert spark.is_globally_sorted()
        spark_s.append(spark.elapsed_seconds)
    return PresortedResult(labels, pgxd_s, spark_s)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [label, pg, sp, sp / pg]
        for label, pg, sp in zip(result.labels, result.pgxd_seconds, result.spark_seconds)
    ]
    return format_table(
        ["input order", "pgxd-s", "spark-s", "spark/pgxd"],
        rows,
        title=f"Presortedness — TimSort's advantage vs input order (p={MACHINES})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
