"""Command-line entry point: ``repro-experiments [names...]``.

Runs the requested experiments (default: all) at the scale chosen by
``--scale`` or the ``REPRO_SCALE`` environment variable, printing each
paper-shaped table — or, with ``--json``, machine-readable structured
results for downstream tooling.

Observability: ``--trace-out trace.json`` writes a Perfetto-loadable trace
of every simulation the selected experiments ran, and ``--report-out
report.json`` writes the matching run reports (see :mod:`repro.obs`).
Both flags work for *all* experiments — simulators pick the tracer up from
the ambient capture scope, no per-experiment plumbing.

Backends: ``--backend process`` installs the real-parallel process backend
as the ambient default for every sort an experiment runs (see
:mod:`repro.parallel`); the default ``simnet`` keeps the virtual-time
simulator.  Outputs are bit-identical either way — only the clock and the
hardware differ.  ``--trace-out``/``--report-out`` work on both: process
runs merge their per-worker payloads into the same trace/report schema.
``--progress`` (process backend only) streams every worker's step-boundary
heartbeat to stderr as the control-plane hub receives it.

Correctness: ``--sanitize`` runs every simulation under SimSan
(:mod:`repro.simnet.sanitizer` — use-after-Isend, leaked requests,
unmatched messages), printing the report summary to stderr and exiting
non-zero on violations; ``--sanitize-out simsan.json`` additionally writes
the structured report.  Attachment is ambient, exactly like the tracer.
With ``--backend process`` the same flag also arms ShmSan
(:mod:`repro.parallel.shmsan`), the happens-before race detector for the
shared-memory exchange; the ``--sanitize-out`` document then nests both
reports as ``{"simsan": ..., "shmsan": ...}``.

Robustness: ``--chaos SPEC`` (process backend only) injects deterministic
process-level faults — SIGKILLed ranks, hung collectives, delayed control
replies, muted heartbeats, slow ranks — from a seeded
:class:`~repro.parallel.chaos.RealFaultPlan` (``--chaos-seed`` picks the
schedule).  An active plan arms the backend's default
:class:`~repro.parallel.backend.RetryPolicy`, so killed jobs retry and
repeatedly-dying ranks degrade to the survivor set instead of failing the
experiment; the simnet twin of this flag is ``--faults``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

import numpy as np

from . import EXPERIMENTS
from .common import current_scale


def _jsonable(obj):
    """Recursively convert experiment result objects to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulated cluster.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "default", "full"],
        help="experiment scale preset (default: REPRO_SCALE or 'default')",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured results as JSON instead of tables",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Perfetto/Chrome trace of every simulation run",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write structured run reports (JSON) for every simulation run",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run every simulation under SimSan; exit non-zero on violations",
    )
    parser.add_argument(
        "--sanitize-out",
        default=None,
        metavar="PATH",
        help="write the SimSan report JSON (implies --sanitize)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject faults into every simulation, e.g. "
            "'drop=0.05,dup=0.01,crash=3@0.0005' "
            "(see repro.simnet.faults.FaultPlan.from_spec)"
        ),
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the fault schedule's RNG (default: 0)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=["simnet", "process"],
        help=(
            "execution substrate for every sort: 'simnet' (virtual time, "
            "the default) or 'process' (one OS process per rank with a "
            "shared-memory exchange; identical outputs, wall-clock timing)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "stream per-worker step heartbeats (rank, step, rows) to stderr "
            "— live visibility into process-backend sorts"
        ),
    )
    parser.add_argument(
        "--pool",
        action="store_true",
        help=(
            "with --backend process: serve every sort from one persistent "
            "worker pool (amortized spawn, warm shm arenas, splitter-cache "
            "reuse across sorts) and print the pool's job/cache counters "
            "at the end"
        ),
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "with --backend process: deterministic process-level fault "
            "injection (kill=RANK@STEP[:JOB], poison=RANK, hang=RANK@OP"
            "[:JOB], delay=P[:SPIKE], mute=RANK, slow=RANKxMULT, "
            "comma-separated); failed jobs are retried and poisoned ranks "
            "degraded per the default RetryPolicy"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the chaos schedule's RNG (default: 0)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list")
    scale = current_scale(args.scale)
    observing = bool(args.trace_out or args.report_out)
    captures: list = []  # (experiment name, Capture)

    pool_backend = None
    if args.pool:
        if args.backend != "process":
            parser.error("--pool requires --backend process")
        from ..parallel.backend import ProcessBackend

        pool_backend = ProcessBackend()

    sanitizer = None
    shm_sanitizer = None
    if args.sanitize or args.sanitize_out:
        from ..simnet.sanitizer import SimSan

        sanitizer = SimSan()
        if args.backend == "process":
            from ..parallel.shmsan import ShmSan

            shm_sanitizer = ShmSan()

    fault_plan = None
    if args.faults is not None:
        from ..simnet.faults import FaultPlan

        fault_plan = FaultPlan.from_spec(args.faults, seed=args.fault_seed)
        print(f"[faults: {fault_plan.describe()}]", file=sys.stderr)

    chaos_plan = None
    if args.chaos is not None:
        if args.backend != "process":
            parser.error("--chaos requires --backend process")
        from ..parallel.chaos import RealFaultPlan

        chaos_plan = RealFaultPlan.from_spec(args.chaos, seed=args.chaos_seed)
        print(f"[chaos: {chaos_plan.describe()}]", file=sys.stderr)

    def run_observed(name, fn):
        from contextlib import ExitStack

        with ExitStack() as stack:
            if sanitizer is not None:
                from ..simnet.sanitizer import sanitize

                stack.enter_context(sanitize(sanitizer))
            if shm_sanitizer is not None:
                from ..parallel.shmsan import shm_sanitize

                stack.enter_context(shm_sanitize(shm_sanitizer))
            if fault_plan is not None:
                from ..simnet.faults import inject_faults

                stack.enter_context(inject_faults(fault_plan))
            if chaos_plan is not None:
                from ..parallel.chaos import inject_real_faults

                stack.enter_context(inject_real_faults(chaos_plan))
            if pool_backend is not None:
                # The shared pool IS the ambient backend: every sorter
                # the experiment builds dispatches to the same warm
                # workers.  The scope never closes it; main() does.
                from ..parallel.backend import use_backend

                stack.enter_context(use_backend(pool_backend))
            elif args.backend is not None:
                from ..parallel.backend import use_backend

                stack.enter_context(use_backend(args.backend))
            if args.progress:
                from ..parallel.tracing import use_progress

                stack.enter_context(use_progress(_print_progress))
            cap = None
            if observing:
                from ..obs.context import capture

                cap = stack.enter_context(capture(name=name))
            out = fn()
        if cap is not None:
            captures.append((name, cap))
        return out

    if args.json:
        payload = {}
        for name in names:
            result = run_observed(name, lambda: EXPERIMENTS[name].run(scale))
            payload[name] = _jsonable(result)
        print(json.dumps(payload, indent=2))
        _write_artifacts(args.trace_out, args.report_out, captures)
        _close_pool(pool_backend)
        return _finish_sanitized(sanitizer, shm_sanitizer, args.sanitize_out)
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()  # repro: noqa[R002] — wall time of the regeneration itself, never enters a simulation
        print(f"== {name} ".ljust(72, "="))
        print(run_observed(name, lambda: module.main(scale)))
        elapsed = time.perf_counter() - start  # repro: noqa[R002] — same: display-only wall timing
        print(f"[{name} regenerated in {elapsed:.1f}s wall]\n")
    _write_artifacts(args.trace_out, args.report_out, captures)
    _close_pool(pool_backend)
    return _finish_sanitized(sanitizer, shm_sanitizer, args.sanitize_out)


def _print_progress(rank: int, step: str, rows: int) -> None:
    """The ``--progress`` sink: one stderr line per worker heartbeat."""
    print(f"[progress r{rank} -> {step} ({rows} rows)]", file=sys.stderr)


def _close_pool(pool_backend) -> None:
    """Retire the ``--pool`` backend and surface its counters."""
    if pool_backend is None:
        return
    stats = pool_backend.stats
    pool_backend.close()
    print(f"[pool: {json.dumps(stats)}]", file=sys.stderr)


def _finish_sanitized(sanitizer, shm_sanitizer, sanitize_out) -> int:
    """Report sanitizer findings; non-zero exit on any violation.

    Simnet-only runs keep the bare SimSan report document; process-backend
    runs (where ShmSan is armed too) nest both reports so downstream
    tooling can tell the comm-layer findings from the shm-race findings.
    """
    if sanitizer is None:
        return 0
    if sanitize_out:
        doc = sanitizer.report.to_json()
        if shm_sanitizer is not None:
            doc = {
                "simsan": sanitizer.report.to_json(),
                "shmsan": shm_sanitizer.report.to_json(),
            }
        with open(sanitize_out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[sanitizer report -> {sanitize_out}]", file=sys.stderr)
    print(sanitizer.report.summary(), file=sys.stderr)
    ok = sanitizer.report.ok
    if shm_sanitizer is not None:
        print(shm_sanitizer.report.summary(), file=sys.stderr)
        ok = ok and shm_sanitizer.report.ok
    return 0 if ok else 1


def _write_artifacts(trace_out, report_out, captures) -> None:
    """Write the Perfetto trace and/or run-report set for captured runs."""
    if not (trace_out or report_out):
        return
    from ..obs.perfetto import export_chrome_trace
    from ..obs.report import RunReport

    if trace_out:
        tracers = [t for _, cap in captures for t in cap.tracers]
        export_chrome_trace(tracers, trace_out)
        print(f"[trace: {len(tracers)} simulation(s) -> {trace_out}]", file=sys.stderr)
    if report_out:
        reports = []
        for name, cap in captures:
            for i, session in enumerate(cap.sessions):
                sim = session.simulator
                if not getattr(sim, "_ran", False):
                    continue  # constructed but never run
                report = RunReport.from_metrics(
                    sim.metrics(),
                    tracer=session.tracer,
                    # Process-backend sessions carry measured per-rank step
                    # walls; simulators don't (their reports derive walls
                    # from the tracer's phase spans as before).
                    step_seconds=getattr(sim, "step_seconds", None),
                )
                reports.append(
                    {"experiment": name, "session": i, "report": report.to_json()}
                )
        doc = {"schema": "repro.run-report-set/1", "reports": reports}
        with open(report_out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[reports: {len(reports)} run(s) -> {report_out}]", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
