"""Command-line entry point: ``repro-experiments [names...]``.

Runs the requested experiments (default: all) at the scale chosen by
``--scale`` or the ``REPRO_SCALE`` environment variable, printing each
paper-shaped table — or, with ``--json``, machine-readable structured
results for downstream tooling.

Observability: ``--trace-out trace.json`` writes a Perfetto-loadable trace
of every simulation the selected experiments ran, and ``--report-out
report.json`` writes the matching run reports (see :mod:`repro.obs`).
Both flags work for *all* experiments — simulators pick the tracer up from
the ambient capture scope, no per-experiment plumbing.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

import numpy as np

from . import EXPERIMENTS
from .common import current_scale


def _jsonable(obj):
    """Recursively convert experiment result objects to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulated cluster.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "default", "full"],
        help="experiment scale preset (default: REPRO_SCALE or 'default')",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured results as JSON instead of tables",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Perfetto/Chrome trace of every simulation run",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write structured run reports (JSON) for every simulation run",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list")
    scale = current_scale(args.scale)
    observing = bool(args.trace_out or args.report_out)
    captures: list = []  # (experiment name, Capture)

    def run_observed(name, fn):
        if not observing:
            return fn()
        from ..obs.context import capture

        with capture(name=name) as cap:
            out = fn()
        captures.append((name, cap))
        return out

    if args.json:
        payload = {}
        for name in names:
            result = run_observed(name, lambda: EXPERIMENTS[name].run(scale))
            payload[name] = _jsonable(result)
        print(json.dumps(payload, indent=2))
        _write_artifacts(args.trace_out, args.report_out, captures)
        return 0
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"== {name} ".ljust(72, "="))
        print(run_observed(name, lambda: module.main(scale)))
        print(f"[{name} regenerated in {time.perf_counter() - start:.1f}s wall]\n")
    _write_artifacts(args.trace_out, args.report_out, captures)
    return 0


def _write_artifacts(trace_out, report_out, captures) -> None:
    """Write the Perfetto trace and/or run-report set for captured runs."""
    if not (trace_out or report_out):
        return
    from ..obs.perfetto import export_chrome_trace
    from ..obs.report import RunReport

    if trace_out:
        tracers = [t for _, cap in captures for t in cap.tracers]
        export_chrome_trace(tracers, trace_out)
        print(f"[trace: {len(tracers)} simulation(s) -> {trace_out}]", file=sys.stderr)
    if report_out:
        reports = []
        for name, cap in captures:
            for i, session in enumerate(cap.sessions):
                sim = session.simulator
                if not getattr(sim, "_ran", False):
                    continue  # constructed but never run
                report = RunReport.from_metrics(sim.metrics(), tracer=session.tracer)
                reports.append(
                    {"experiment": name, "session": i, "report": report.to_json()}
                )
        doc = {"schema": "repro.run-report-set/1", "reports": reports}
        with open(report_out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"[reports: {len(reports)} run(s) -> {report_out}]", file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
