"""Command-line entry point: ``repro-experiments [names...]``.

Runs the requested experiments (default: all) at the scale chosen by
``--scale`` or the ``REPRO_SCALE`` environment variable, printing each
paper-shaped table — or, with ``--json``, machine-readable structured
results for downstream tooling.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

import numpy as np

from . import EXPERIMENTS
from .common import current_scale


def _jsonable(obj):
    """Recursively convert experiment result objects to JSON-safe values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer, np.floating, np.bool_)):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    return obj


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures on the simulated cluster.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=f"experiments to run (default: all). Known: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["smoke", "default", "full"],
        help="experiment scale preset (default: REPRO_SCALE or 'default')",
    )
    parser.add_argument("--list", action="store_true", help="list experiments and exit")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit structured results as JSON instead of tables",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = args.names or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; use --list")
    scale = current_scale(args.scale)
    if args.json:
        payload = {}
        for name in names:
            result = EXPERIMENTS[name].run(scale)
            payload[name] = _jsonable(result)
        print(json.dumps(payload, indent=2))
        return 0
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"== {name} ".ljust(72, "="))
        print(module.main(scale))
        print(f"[{name} regenerated in {time.perf_counter() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
