"""Network sensitivity: when does the sort become interconnect-bound?

Extension experiment.  The paper's testbed is 56 Gb/s InfiniBand (Table I)
and its Figure 7 shows the exchange step cheapest — a property of that
fabric, not of the algorithm.  This sweep rides the per-port bandwidth from
InfiniBand down to commodity gigabit and reports where the exchange
overtakes the local sort, plus the latency sensitivity at fixed bandwidth
(the sort sends few large transfers, so latency should barely matter).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..core.sorter_labels import STEP_LABELS
from ..simnet.network import NetworkModel, gbit_per_s
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

BANDWIDTHS_GBIT = (56.0, 10.0, 1.0)
LATENCIES = (1.5e-6, 100e-6, 5e-3)

MACHINES = 16


#: Oversubscription ratios (port bandwidth : share of bisection).
OVERSUBSCRIPTION = (1, 4, 16)


@dataclass
class NetworkSensitivityResult:
    bandwidth_rows: list[tuple[float, float, float, float]]  # gbit, total, sort, exchange
    latency_rows: list[tuple[float, float, float]]  # latency, total, exchange
    oversub_rows: list[tuple[int, float, float]]  # ratio, total, exchange

    def oversubscription_hurts(self) -> bool:
        return self.oversub_rows[-1][2] > self.oversub_rows[0][2]

    def infiniband_exchange_is_cheap(self) -> bool:
        _, _, sort_s, exch_s = self.bandwidth_rows[0]
        return exch_s < sort_s

    def gigabit_is_network_bound(self) -> bool:
        _, _, sort_s, exch_s = self.bandwidth_rows[-1]
        return exch_s > sort_s

    def latency_insensitive(self, tolerance: float = 1.2) -> bool:
        totals = [row[1] for row in self.latency_rows]
        return max(totals) <= min(totals) * tolerance


def run(scale: ExperimentScale | None = None) -> NetworkSensitivityResult:
    scale = scale or current_scale()
    data = generate("uniform", scale.real_keys, seed=scale.seed, value_range=1 << 20)

    def sort_with(network: NetworkModel):
        sorter = DistributedSorter(
            num_processors=MACHINES,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
            network=network,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        steps = result.step_breakdown()
        return result.elapsed_seconds, steps[STEP_LABELS[0]], steps[STEP_LABELS[4]]

    bandwidth_rows = []
    for gbit in BANDWIDTHS_GBIT:
        total, sort_s, exch_s = sort_with(
            NetworkModel(bandwidth=gbit_per_s(gbit) * 0.8)
        )
        bandwidth_rows.append((gbit, total, sort_s, exch_s))
    latency_rows = []
    for latency in LATENCIES:
        total, _, exch_s = sort_with(NetworkModel(latency=latency))
        latency_rows.append((latency, total, exch_s))
    oversub_rows = []
    port = gbit_per_s(56.0) * 0.8
    for ratio in OVERSUBSCRIPTION:
        # Bisection = (ports * port_bw) / ratio; ratio 1 = non-blocking.
        switch = None if ratio == 1 else MACHINES * port / ratio
        total, _, exch_s = sort_with(
            NetworkModel(bandwidth=port, switch_bandwidth=switch)
        )
        oversub_rows.append((ratio, total, exch_s))
    return NetworkSensitivityResult(bandwidth_rows, latency_rows, oversub_rows)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    t1 = format_table(
        ["port-gbit", "total-s", "local-sort-s", "exchange-s"],
        [list(r) for r in result.bandwidth_rows],
        title=f"Network sensitivity — bandwidth sweep (p={MACHINES})",
    )
    t2 = format_table(
        ["latency-s", "total-s", "exchange-s"],
        [list(r) for r in result.latency_rows],
        title="Latency sweep (56 Gb/s fixed)",
    )
    t3 = format_table(
        ["oversubscription", "total-s", "exchange-s"],
        [[f"{r}:1", t, e] for r, t, e in result.oversub_rows],
        title="Switch oversubscription sweep (56 Gb/s ports)",
    )
    return t1 + "\n\n" + t2 + "\n\n" + t3


if __name__ == "__main__":  # pragma: no cover
    print(main())
