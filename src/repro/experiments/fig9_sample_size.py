"""Figure 9: impact of the sample size on overhead and total time.

"Seven different sample sizes are used: 0.004X, 0.04X, 0.4X, X, 1.004X,
1.04X, and 1.4X, where X = 256KB/number of processors ... the small number
of samples not only results in having load imbalance, but it also increases
communication overheads ... the total execution time for the cases of
having very small amount of samples and large amount of samples are both
greater than the execution time of having X samples."

The reproduced claims: communication overhead falls as the sample budget
approaches X (better splitters move less skewed data); the total-time curve
is at (or near) its minimum at X.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from .common import ExperimentScale, current_scale, format_table
from .fig8_twitter import TWITTER_MODELED_KEYS, twitter_keys

#: The paper's seven sample-size factors.
SAMPLE_FACTORS = (0.004, 0.04, 0.4, 1.0, 1.004, 1.04, 1.4)

PROCESSORS = 16


@dataclass
class Fig9Result:
    factors: list[float]
    total_seconds: list[float]
    comm_seconds: list[float]
    comm_fraction: list[float]
    imbalance: list[float]

    def x_is_near_optimal(self, tolerance: float = 1.05) -> bool:
        """Total time at X is within ``tolerance`` of the sweep minimum."""
        at_x = self.total_seconds[self.factors.index(1.0)]
        return at_x <= min(self.total_seconds) * tolerance

    def tiny_samples_hurt(self) -> bool:
        return (
            self.total_seconds[0] > self.total_seconds[self.factors.index(1.0)]
            and self.imbalance[0] > self.imbalance[self.factors.index(1.0)]
        )


def run(scale: ExperimentScale | None = None) -> Fig9Result:
    scale = scale or current_scale()
    keys = twitter_keys(scale)
    data_scale = TWITTER_MODELED_KEYS / len(keys)
    p = min(PROCESSORS, max(scale.processors))
    totals, comms, fracs, imbs = [], [], [], []
    for factor in SAMPLE_FACTORS:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=data_scale,
            sample_factor=factor,
        )
        result = sorter.sort(keys)
        assert result.is_globally_sorted()
        totals.append(result.elapsed_seconds)
        comms.append(result.communication_seconds())
        fracs.append(result.communication_fraction())
        imbs.append(result.imbalance())
    return Fig9Result(list(SAMPLE_FACTORS), totals, comms, fracs, imbs)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [f"{f}X", t, c, frac, i]
        for f, t, c, frac, i in zip(
            result.factors,
            result.total_seconds,
            result.comm_seconds,
            result.comm_fraction,
            result.imbalance,
        )
    ]
    return format_table(
        ["sample-size", "total-s", "comm-overhead-s", "comm-fraction", "imbalance"],
        rows,
        title=f"Figure 9 — sample-size sweep, Twitter dataset (p={PROCESSORS})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
