"""Weak scaling: fixed data volume *per processor* (extension experiment).

Not a paper figure — the paper only shows strong scaling (Figure 6) — but
the natural companion study for a sorting library: the modeled dataset
grows with the processor count (125M keys per processor, the paper's
1B/8 density), so perfect weak scaling would be a flat total-time line with
only the log-factor of the larger sort and the growing exchange fan-out
bending it upward.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

#: Modeled keys per processor (the paper's density at p=8).
KEYS_PER_PROCESSOR = 125_000_000


@dataclass
class WeakScalingResult:
    processors: list[int]
    total_seconds: list[float]

    def efficiency(self) -> list[float]:
        """t(p0) / t(p) — 1.0 is perfect weak scaling."""
        base = self.total_seconds[0]
        return [base / t for t in self.total_seconds]

    def acceptably_flat(self, floor: float = 0.6) -> bool:
        return min(self.efficiency()) >= floor


def run(scale: ExperimentScale | None = None) -> WeakScalingResult:
    scale = scale or current_scale()
    data = generate("uniform", scale.real_keys, seed=scale.seed, value_range=1 << 20)
    totals = []
    for p in scale.processors:
        modeled = KEYS_PER_PROCESSOR * p
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=modeled / scale.real_keys,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        totals.append(result.elapsed_seconds)
    return WeakScalingResult(list(scale.processors), totals)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    effs = result.efficiency()
    rows = [
        [p, KEYS_PER_PROCESSOR * p, t, e]
        for p, t, e in zip(result.processors, result.total_seconds, effs)
    ]
    return format_table(
        ["processors", "modeled-keys", "total-s", "weak-efficiency"],
        rows,
        title=f"Weak scaling — {KEYS_PER_PROCESSOR:,} modeled keys per processor",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
