"""One module per paper table/figure, plus ablations (see DESIGN.md §4).

Every module exposes ``run(scale) -> Result`` (structured data for tests)
and ``main(scale) -> str`` (the paper-shaped text table).  The registry
below drives the CLI and the benchmark harness.
"""

from . import (
    ablations,
    baselines_comparison,
    buffer_sweep,
    fig4_distributions,
    fig5_total_time,
    fig6_strong_scaling,
    fig7_step_breakdown,
    fig8_twitter,
    fig9_sample_size,
    fig10_sample_balance,
    fig11_memory,
    ghost_ablation,
    network_sensitivity,
    presorted,
    splitter_strategies,
    straggler,
    table2_ratios,
    table3_ranges,
    weak_scaling,
)
from .common import (
    PAPER_KEYS,
    PAPER_PROCESSORS,
    PAPER_THREADS,
    ExperimentScale,
    current_scale,
    format_table,
)

#: Registry of every reproducible table/figure, in paper order.
EXPERIMENTS = {
    "fig4": fig4_distributions,
    "fig5": fig5_total_time,
    "fig6": fig6_strong_scaling,
    "fig7": fig7_step_breakdown,
    "table2": table2_ratios,
    "fig8": fig8_twitter,
    "table3": table3_ranges,
    "fig9": fig9_sample_size,
    "fig10": fig10_sample_balance,
    "fig11": fig11_memory,
    "ablations": ablations,
    "baselines": baselines_comparison,
    "buffer-sweep": buffer_sweep,
    "weak-scaling": weak_scaling,
    "splitter-strategies": splitter_strategies,
    "ghost-ablation": ghost_ablation,
    "straggler": straggler,
    "presorted": presorted,
    "network-sensitivity": network_sensitivity,
}

__all__ = [
    "EXPERIMENTS",
    "PAPER_KEYS",
    "PAPER_PROCESSORS",
    "PAPER_THREADS",
    "ExperimentScale",
    "current_scale",
    "format_table",
]
