"""Figure 10: load balance versus sample size across processor counts.

"It shows that 0.004X number of samples is not large enough to keep
balanced workloads between the processors ... However, both X and 1.4X
result in having balanced loads in all experiments."

Min and max per-processor loads (modeled keys) for sample factors 0.004X,
X and 1.4X over the processor sweep.  The reproduced claims: the min-max
spread is large for 0.004X and collapses for X and 1.4X.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from .common import ExperimentScale, current_scale, format_table
from .fig8_twitter import TWITTER_MODELED_KEYS, twitter_keys

SAMPLE_FACTORS = (0.004, 1.0, 1.4)


@dataclass
class Fig10Result:
    processors: list[int]
    #: factor -> list of (min_load, max_load) in modeled keys, per p.
    spreads: dict[float, list[tuple[int, int]]]

    def spread(self, factor: float, p: int) -> int:
        i = self.processors.index(p)
        lo, hi = self.spreads[factor][i]
        return hi - lo

    def x_balances_everywhere(self, rel_tol: float = 0.25) -> bool:
        """At factor X the spread stays within rel_tol of the mean load."""
        for i, p in enumerate(self.processors):
            lo, hi = self.spreads[1.0][i]
            mean = (lo + hi) / 2 or 1
            if (hi - lo) / mean > rel_tol:
                return False
        return True


def run(scale: ExperimentScale | None = None) -> Fig10Result:
    scale = scale or current_scale()
    keys = twitter_keys(scale)
    data_scale = TWITTER_MODELED_KEYS / len(keys)
    spreads: dict[float, list[tuple[int, int]]] = {f: [] for f in SAMPLE_FACTORS}
    for p in scale.processors:
        for factor in SAMPLE_FACTORS:
            sorter = DistributedSorter(
                num_processors=p,
                threads_per_machine=scale.threads,
                data_scale=data_scale,
                sample_factor=factor,
            )
            result = sorter.sort(keys)
            counts = result.counts()
            spreads[factor].append(
                (int(counts.min() * data_scale), int(counts.max() * data_scale))
            )
    return Fig10Result(list(scale.processors), spreads)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    headers = ["processors"] + [
        f"{f}X min/max" for f in SAMPLE_FACTORS
    ]
    rows = []
    for i, p in enumerate(result.processors):
        row = [p]
        for f in SAMPLE_FACTORS:
            lo, hi = result.spreads[f][i]
            row.append(f"{lo:,} / {hi:,}")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Figure 10 — min/max processor load (modeled keys) by sample size",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
