"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify each claimed mechanism by
switching it off:

* **investigator** (Figure 3c) — load balance on duplicate-heavy data;
* **balanced-merge handler** (Figure 2) — merge time vs a sequential fold;
* **asynchronous messaging** — exchange time vs blocking sends;
* **buffer granularity** — the 256KB read buffer vs much smaller/larger.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

PROCESSORS = 16


@dataclass
class AblationResult:
    #: name -> (on_value, off_value); semantics per metric column.
    rows: dict[str, tuple[float, float]]

    def improvement(self, name: str) -> float:
        on, off = self.rows[name]
        return off / on if on else float("inf")


def _sorter(scale: ExperimentScale, p: int, **overrides) -> DistributedSorter:
    return DistributedSorter(
        num_processors=p,
        threads_per_machine=scale.threads,
        data_scale=scale.data_scale,
        **overrides,
    )


def run(scale: ExperimentScale | None = None) -> AblationResult:
    scale = scale or current_scale()
    p = min(PROCESSORS, max(scale.processors))
    skewed = generate("right-skewed", scale.real_keys, seed=scale.seed)
    uniform = generate("uniform", scale.real_keys, seed=scale.seed)
    rows: dict[str, tuple[float, float]] = {}

    # Investigator: imbalance on duplicate-heavy data.
    inv_on = _sorter(scale, p).sort(skewed)
    inv_off = _sorter(scale, p, investigator=False).sort(skewed)
    rows["investigator (imbalance)"] = (inv_on.imbalance(), inv_off.imbalance())

    # Balanced merge handler: total time on uniform data.
    bm_on = _sorter(scale, p).sort(uniform)
    bm_off = _sorter(scale, p, balanced_merge=False).sort(uniform)
    rows["balanced merge (total s)"] = (bm_on.elapsed_seconds, bm_off.elapsed_seconds)

    # Asynchronous messaging: exchange-step elapsed time.
    as_on = _sorter(scale, p).sort(uniform)
    as_off = _sorter(scale, p, async_messaging=False).sort(uniform)
    label = "5-exchange"
    rows["async messaging (exchange s)"] = (
        as_on.step_breakdown()[label],
        as_off.step_breakdown()[label],
    )

    # Merge strategy: the handler's parallel pairwise levels vs a
    # sequential k-way heap merge over the same received runs.
    import numpy as np

    from ..core.balanced_merge import (
        balanced_merge,
        kway_merge_cost_seconds,
        merge_cost_seconds,
    )
    from ..pgxd import TaskManager

    rng = np.random.default_rng(scale.seed)
    runs = [np.sort(rng.integers(0, 1 << 30, scale.real_keys // p)) for _ in range(p)]
    cost = scale.cost()
    tasks = TaskManager(scale.threads, cost)
    handler = merge_cost_seconds(
        balanced_merge(runs), tasks, cost, scale=scale.data_scale
    )
    kway = kway_merge_cost_seconds(
        sum(len(r) for r in runs), p, cost, scale=scale.data_scale
    )
    rows["handler vs k-way (merge s)"] = (handler, kway)

    # Buffer granularity: total time with 256KB vs 4KB request buffers.
    buf_on = _sorter(scale, p).sort(uniform)
    buf_off = _sorter(scale, p, read_buffer_bytes=4 * 1024).sort(uniform)
    rows["256KB buffers (total s)"] = (buf_on.elapsed_seconds, buf_off.elapsed_seconds)
    return AblationResult(rows)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [name, on, off, off / on if on else float("inf")]
        for name, (on, off) in result.rows.items()
    ]
    return format_table(
        ["mechanism (metric)", "on", "off", "off/on"],
        rows,
        title=f"Ablations — each mechanism on vs off (p={PROCESSORS})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
