"""Related-work comparison: sample sort vs bitonic vs radix (section II).

Quantifies the paper's qualitative claims about the alternatives it
rejected: bitonic "often needs to exchange the entire data assigned to each
processor" (communication volume), and radix "usually suffers in
irregularity in communication and computation" (load imbalance on
duplicate-heavy data).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import bitonic_sort, radix_sort
from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

PROCESSORS = 16


@dataclass
class BaselinesResult:
    #: algorithm -> {"seconds", "remote_gb", "imbalance"} on uniform data.
    uniform: dict[str, dict[str, float]]
    #: algorithm -> imbalance on right-skewed data.
    skew_imbalance: dict[str, float]

    def bitonic_moves_more(self) -> bool:
        return self.uniform["bitonic"]["remote_gb"] > self.uniform["pgxd"]["remote_gb"]

    def radix_skew_penalty(self) -> float:
        return self.skew_imbalance["radix"] / self.skew_imbalance["pgxd"]


def run(scale: ExperimentScale | None = None) -> BaselinesResult:
    scale = scale or current_scale()
    p = min(PROCESSORS, max(scale.processors))
    if p & (p - 1):  # bitonic needs a power of two
        p = 1 << (p.bit_length() - 1)
    uniform_keys = generate("uniform", scale.real_keys, seed=scale.seed, value_range=1 << 20)
    skewed_keys = generate("right-skewed", scale.real_keys, seed=scale.seed)
    ds = scale.data_scale

    uniform: dict[str, dict[str, float]] = {}
    pg = DistributedSorter(
        num_processors=p, threads_per_machine=scale.threads, data_scale=ds
    ).sort(uniform_keys)
    uniform["pgxd"] = {
        "seconds": pg.elapsed_seconds,
        "remote_gb": pg.metrics.remote_bytes / 1e9,
        "imbalance": pg.imbalance(),
    }
    bt = bitonic_sort(
        uniform_keys, p, data_scale=ds, threads_per_machine=scale.threads
    )
    uniform["bitonic"] = {
        "seconds": bt.elapsed_seconds,
        "remote_gb": bt.metrics.remote_bytes / 1e9,
        "imbalance": 1.0,  # bitonic keeps fixed equal blocks by construction
    }
    rx = radix_sort(uniform_keys, p, data_scale=ds, threads_per_machine=scale.threads)
    uniform["radix"] = {
        "seconds": rx.elapsed_seconds,
        "remote_gb": rx.metrics.remote_bytes / 1e9,
        "imbalance": rx.imbalance(),
    }

    skew_imbalance = {
        "pgxd": DistributedSorter(
            num_processors=p, threads_per_machine=scale.threads, data_scale=ds
        )
        .sort(skewed_keys)
        .imbalance(),
        "radix": radix_sort(
            skewed_keys, p, data_scale=ds, threads_per_machine=scale.threads
        ).imbalance(),
    }
    return BaselinesResult(uniform, skew_imbalance)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [name, m["seconds"], m["remote_gb"], m["imbalance"]]
        for name, m in result.uniform.items()
    ]
    table1 = format_table(
        ["algorithm", "total-s", "remote-GB", "imbalance"],
        rows,
        title=f"Related-work comparison on uniform keys (p<={PROCESSORS})",
    )
    rows2 = [[name, imb] for name, imb in result.skew_imbalance.items()]
    table2 = format_table(
        ["algorithm", "imbalance"],
        rows2,
        title="Load balance on right-skewed (duplicate-heavy) keys",
    )
    return table1 + "\n\n" + table2


if __name__ == "__main__":  # pragma: no cover
    print(main())
