"""Figure 8: PGX.D versus Spark on the Twitter graph dataset.

"Figure 8 shows the execution time compared to Spark's distributed sorting
implementation, which illustrates that it is faster than Spark by around
2.6x on 52 processors."

The paper's Twitter data (41.6M vertices, 25 GB) is substituted by the
synthetic Twitter-shaped workload of :mod:`repro.workloads.twitter`
(R-MAT graph, quantized uniform vertex property over [0, 95] as sort keys
— see DESIGN.md).  The reproduced claims: PGX.D wins at every processor
count and by roughly 2-3x at 52.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.spark.engine import spark_sort_by_key
from ..core.api import DistributedSorter
from ..workloads import synthetic_twitter
from .common import ExperimentScale, Series, current_scale, format_table

#: The paper's Twitter edge count (sort keys are per-edge properties).
TWITTER_MODELED_KEYS = 1_468_365_182


def twitter_keys(scale: ExperimentScale):
    """Edge-property sort keys sized to the experiment scale."""
    import math

    # Choose the R-MAT scale so the edge count tracks real_keys.
    graph_scale = max(int(math.log2(max(scale.real_keys // 8, 2))), 4)
    ds = synthetic_twitter(scale=graph_scale, edge_factor=8, seed=scale.seed)
    return ds.edge_keys()


@dataclass
class Fig8Result:
    processors: list[int]
    pgxd_seconds: Series
    spark_seconds: Series

    def ratio_at(self, p: int) -> float:
        i = self.processors.index(p)
        return self.spark_seconds.y[i] / self.pgxd_seconds.y[i]


def run(scale: ExperimentScale | None = None) -> Fig8Result:
    scale = scale or current_scale()
    keys = twitter_keys(scale)
    data_scale = TWITTER_MODELED_KEYS / len(keys)
    pgxd = Series("pgxd")
    spark = Series("spark")
    for p in scale.processors:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=data_scale,
        )
        r = sorter.sort(keys)
        assert r.is_globally_sorted()
        pgxd.add(p, r.elapsed_seconds)
        s = spark_sort_by_key(keys, num_executors=p, data_scale=data_scale)
        assert s.is_globally_sorted()
        spark.add(p, s.elapsed_seconds)
    return Fig8Result(list(scale.processors), pgxd, spark)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [
            p,
            result.pgxd_seconds.y[i],
            result.spark_seconds.y[i],
            result.spark_seconds.y[i] / result.pgxd_seconds.y[i],
        ]
        for i, p in enumerate(result.processors)
    ]
    return format_table(
        ["processors", "pgxd-s", "spark-s", "spark/pgxd"],
        rows,
        title="Figure 8 — Twitter dataset sort time, PGX.D vs Spark",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
