"""Figure 7: per-step execution time of the PGX.D sort.

"Figure 7 shows the execution time of each steps for the experiments on the
normal and right skewed distribution types ... It can be seen that
sending/receiving data costs less time than the other steps, which
validates the efficient-bandwidth communication and the asynchronous
execution provided in PGX.D."

The reproduced claims: the exchange step (5) is among the cheapest; the
local sort (1) dominates; and the breakdown looks alike for normal and
right-skewed inputs (the investigator keeps the skewed case regular).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..core.sorter import STEP_LABELS
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

DISTRIBUTIONS = ("normal", "right-skewed")

#: Processor count for the breakdown (a mid-sweep point).
PROCESSORS = 16


@dataclass
class Fig7Result:
    #: step label -> seconds, per distribution.
    breakdown: dict[str, dict[str, float]]

    def exchange_is_cheap(self, kind: str) -> bool:
        steps = self.breakdown[kind]
        return steps[STEP_LABELS[4]] < steps[STEP_LABELS[0]]


def run(scale: ExperimentScale | None = None) -> Fig7Result:
    scale = scale or current_scale()
    p = min(PROCESSORS, max(scale.processors))
    breakdown: dict[str, dict[str, float]] = {}
    for kind in DISTRIBUTIONS:
        data = generate(kind, scale.real_keys, seed=scale.seed)
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        breakdown[kind] = result.step_breakdown()
    return Fig7Result(breakdown)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [label] + [result.breakdown[kind][label] for kind in DISTRIBUTIONS]
        for label in STEP_LABELS
    ]
    return format_table(
        ["step"] + list(DISTRIBUTIONS),
        rows,
        title=f"Figure 7 — per-step time (virtual seconds, p={PROCESSORS})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
