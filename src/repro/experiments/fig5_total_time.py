"""Figure 5: PGX.D distributed sort total execution time.

"Figure 5 shows the execution time of the distributed sorting methods on
data from figure 4.  It illustrates that PGX.D sorts data efficiently
regardless of the input data distribution type."

Sweep: four distributions x the processor counts, one billion modeled keys.
The reproduced claim is two-fold: times fall with processor count, and the
four distribution curves sit close together (the skewed inputs cost about
the same as uniform).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads import DISTRIBUTIONS, generate
from .common import ExperimentScale, Series, current_scale, format_table


@dataclass
class Fig5Result:
    #: series per distribution: x = processors, y = virtual seconds.
    series: dict[str, Series]

    def spread_at(self, p: int) -> float:
        """Max/min total time across distributions at one processor count."""
        times = [s.y[s.x.index(p)] for s in self.series.values() if p in s.x]
        return max(times) / min(times) if times else 1.0


def run(scale: ExperimentScale | None = None) -> Fig5Result:
    scale = scale or current_scale()
    series: dict[str, Series] = {}
    for kind in DISTRIBUTIONS:
        data = generate(kind, scale.real_keys, seed=scale.seed)
        s = Series(kind)
        for p in scale.processors:
            sorter = DistributedSorter(
                num_processors=p,
                threads_per_machine=scale.threads,
                data_scale=scale.data_scale,
            )
            result = sorter.sort(data)
            assert result.is_globally_sorted()
            s.add(p, result.elapsed_seconds)
        series[kind] = s
    return Fig5Result(series)


def main(scale: ExperimentScale | None = None) -> str:
    scale = scale or current_scale()
    result = run(scale)
    headers = ["processors"] + list(result.series)
    rows = []
    for i, p in enumerate(scale.processors):
        rows.append([p] + [result.series[k].y[i] for k in result.series])
    return format_table(
        headers,
        rows,
        title=(
            "Figure 5 — PGX.D total sort time (virtual seconds, "
            f"{scale.modeled_keys:,} modeled keys)"
        ),
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
