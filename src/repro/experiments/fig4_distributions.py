"""Figure 4: the four input data distributions.

Regenerates the paper's histograms as text (20-bin counts) plus the
duplicate statistics that motivate the skewed pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workloads import DISTRIBUTIONS, duplication_ratio, generate, histogram
from .common import ExperimentScale, current_scale, format_table


@dataclass
class Fig4Result:
    stats: dict[str, dict[str, float]]
    histograms: dict[str, tuple[np.ndarray, np.ndarray]]


def run(scale: ExperimentScale | None = None) -> Fig4Result:
    scale = scale or current_scale()
    stats: dict[str, dict[str, float]] = {}
    histograms = {}
    for kind in DISTRIBUTIONS:
        keys = generate(kind, scale.real_keys, seed=scale.seed)
        counts, edges = histogram(keys, bins=20)
        histograms[kind] = (counts, edges)
        top = np.bincount(keys).max() / max(len(keys), 1)
        stats[kind] = {
            "mean": float(keys.mean()),
            "std": float(keys.std()),
            "duplication_ratio": duplication_ratio(keys),
            "top_value_mass": float(top),
        }
    return Fig4Result(stats, histograms)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [kind, s["mean"], s["std"], s["duplication_ratio"], s["top_value_mass"]]
        for kind, s in result.stats.items()
    ]
    out = [
        format_table(
            ["distribution", "mean", "std", "dup-ratio", "top-value-mass"],
            rows,
            title="Figure 4 — input data distributions",
        )
    ]
    for kind, (counts, _) in result.histograms.items():
        peak = counts.max()
        bars = "".join("▁▂▃▄▅▆▇█"[min(int(8 * c / max(peak, 1)), 7)] for c in counts)
        out.append(f"{kind:>13s} |{bars}|")
    return "\n".join(out)


if __name__ == "__main__":  # pragma: no cover
    print(main())
