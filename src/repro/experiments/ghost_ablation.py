"""Ghost-node ablation: communication saved on a real graph algorithm.

Section III claims PGX.D "guarantees low communication overhead by applying
ghost nodes selection".  This experiment runs distributed PageRank on a
Twitter-shaped graph across ghost budgets and reports the remote traffic —
the substrate-level counterpart of the sorting ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pgxd import PgxdConfig, PgxdRuntime
from ..pgxd.algorithms import distributed_pagerank
from ..workloads import rmat_edges
from .common import ExperimentScale, current_scale, format_table

GHOST_BUDGETS = (0, 8, 32, 128, 512)

MACHINES = 8
ITERATIONS = 5


@dataclass
class GhostAblationResult:
    budgets: list[int]
    remote_bytes: list[int]
    saved_bytes: list[int]
    crossing_reduction: list[float]

    def ghosting_helps(self) -> bool:
        return self.remote_bytes[-1] < self.remote_bytes[0]

    def saved_monotone(self) -> bool:
        return all(a <= b for a, b in zip(self.saved_bytes, self.saved_bytes[1:]))


def run(scale: ExperimentScale | None = None) -> GhostAblationResult:
    scale = scale or current_scale()
    import math

    graph_scale = max(int(math.log2(max(scale.real_keys // 16, 2))), 6)
    src, dst, n = rmat_edges(graph_scale, 8, seed=scale.seed)
    remote, saved, reduction = [], [], []
    for budget in GHOST_BUDGETS:
        runtime = PgxdRuntime(
            MACHINES,
            config=PgxdConfig(
                ghost_node_budget=budget, data_scale=scale.data_scale
            ),
        )
        result = distributed_pagerank(
            runtime, src, dst, n, iterations=ITERATIONS, use_ghosts=budget > 0
        )
        remote.append(result.remote_bytes)
        saved.append(result.ghosted_write_bytes)
        from ..pgxd import BlockPartition, select_ghosts

        sel = select_ghosts(src, dst, BlockPartition(n, MACHINES), budget)
        reduction.append(sel.reduction)
    return GhostAblationResult(list(GHOST_BUDGETS), remote, saved, reduction)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [b, rb / 1e6, sb / 1e6, f"{cr:.1%}"]
        for b, rb, sb, cr in zip(
            result.budgets,
            result.remote_bytes,
            result.saved_bytes,
            result.crossing_reduction,
        )
    ]
    return format_table(
        ["ghost-budget", "remote-MB", "saved-write-MB", "crossing-cut"],
        rows,
        title=f"Ghost-node ablation — PageRank traffic, {MACHINES} machines x {ITERATIONS} iters",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
