"""Straggler sensitivity: one slow machine vs both engines (extension).

Not a paper figure.  Both PGX.D's sample sort and Spark's sortByKey
partition work *statically*, so a slow machine gates the whole job; this
experiment quantifies how fast each engine's advantage erodes as one
machine's compute slows down.  The observed shape: PGX.D degrades linearly
with the straggler factor (its critical path runs straight through the slow
machine's local sort and merge), while Spark's constant overheads (driver,
disk, stage launches) dilute the degradation — so the PGX.D/Spark gap
*narrows* under stragglers.  A scheduling-level lesson the paper's
homogeneous testbed never exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.spark.engine import spark_sort_by_key
from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

#: Straggler slowdown factors (speed of the slow machine = 1/factor).
FACTORS = (1.0, 1.5, 2.0, 4.0)

MACHINES = 8


@dataclass
class StragglerResult:
    factors: list[float]
    pgxd_seconds: list[float]
    spark_seconds: list[float]

    def pgxd_degradation(self, factor: float) -> float:
        i = self.factors.index(factor)
        return self.pgxd_seconds[i] / self.pgxd_seconds[0]

    def gap_narrows(self) -> bool:
        """The Spark/PGX.D ratio shrinks as the straggler worsens."""
        first = self.spark_seconds[0] / self.pgxd_seconds[0]
        last = self.spark_seconds[-1] / self.pgxd_seconds[-1]
        return last < first

    def both_monotone(self) -> bool:
        return all(
            a <= b * 1.001
            for a, b in zip(self.pgxd_seconds, self.pgxd_seconds[1:])
        ) and all(
            a <= b * 1.001
            for a, b in zip(self.spark_seconds, self.spark_seconds[1:])
        )


def run(scale: ExperimentScale | None = None) -> StragglerResult:
    scale = scale or current_scale()
    data = generate("uniform", scale.real_keys, seed=scale.seed, value_range=1 << 20)
    pgxd_s, spark_s = [], []
    for factor in FACTORS:
        speeds = [1.0] * MACHINES
        speeds[MACHINES // 2] = 1.0 / factor
        sorter = DistributedSorter(
            num_processors=MACHINES,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
            rank_speed=speeds,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        pgxd_s.append(result.elapsed_seconds)
        spark = spark_sort_by_key(
            data,
            num_executors=MACHINES,
            data_scale=scale.data_scale,
            rank_speed=speeds,
        )
        assert spark.is_globally_sorted()
        spark_s.append(spark.elapsed_seconds)
    return StragglerResult(list(FACTORS), pgxd_s, spark_s)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [f"{f}x", pg, sp, sp / pg]
        for f, pg, sp in zip(result.factors, result.pgxd_seconds, result.spark_seconds)
    ]
    return format_table(
        ["straggler", "pgxd-s", "spark-s", "spark/pgxd"],
        rows,
        title=f"Straggler sensitivity — one slow machine of {MACHINES}",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
