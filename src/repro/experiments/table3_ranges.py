"""Table III: per-processor key ranges after sorting the Twitter dataset.

"The ranges of data on each processor after sorting with 8, 12 and 16
processors are included in Table III, which confirms the accuracy of the
proposed technique that data with the smaller value are located on the
processor with the smaller ID."

The reproduced claims: ranges tile [0, 95] in processor-id order without
overlap, and the range widths are near-equal (the paper's boundaries sit at
multiples of ~95/p because the key distribution is near uniform).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads.twitter import KEY_RANGE
from .common import ExperimentScale, current_scale, format_table
from .fig8_twitter import TWITTER_MODELED_KEYS, twitter_keys

PROCESSOR_COUNTS = (8, 12, 16)


@dataclass
class Table3Result:
    #: processor count -> list of (lo, hi) per processor.
    ranges: dict[int, list[tuple[float, float] | None]]

    def boundaries_ordered(self, p: int) -> bool:
        spans = [r for r in self.ranges[p] if r is not None]
        return all(a[1] <= b[0] or abs(a[1] - b[0]) < 1e-9 for a, b in zip(spans, spans[1:]))

    def covers_key_range(self, p: int) -> bool:
        spans = [r for r in self.ranges[p] if r is not None]
        return spans[0][0] >= 0.0 and spans[-1][1] <= KEY_RANGE + 1e-9


def run(scale: ExperimentScale | None = None) -> Table3Result:
    scale = scale or current_scale()
    keys = twitter_keys(scale)
    data_scale = TWITTER_MODELED_KEYS / len(keys)
    ranges: dict[int, list[tuple[float, float] | None]] = {}
    for p in PROCESSOR_COUNTS:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=data_scale,
        )
        result = sorter.sort(keys)
        assert result.is_globally_sorted()
        ranges[p] = result.ranges()
    return Table3Result(ranges)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    max_p = max(PROCESSOR_COUNTS)
    headers = ["proc"] + [f"p={p}" for p in PROCESSOR_COUNTS]
    rows = []
    for i in range(max_p):
        row = [f"proc{i}"]
        for p in PROCESSOR_COUNTS:
            if i < p and result.ranges[p][i] is not None:
                lo, hi = result.ranges[p][i]
                row.append(f"{lo:.2f} - {hi:.2f}")
            else:
                row.append("")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title="Table III — key range per processor, Twitter dataset",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
