"""Shared infrastructure for the paper's experiments.

Every experiment module exposes ``run(scale) -> <Result dataclass>`` and a
``main()`` that prints the paper-shaped table.  :class:`ExperimentScale`
centralizes the knobs: the paper's nominal configuration (1 billion keys,
processor sweep 8..52, 32 threads) is simulated by sorting ``real_keys``
actual keys with ``data_scale`` chosen so the *modeled* volume equals the
nominal one (see ``PgxdConfig.data_scale``).

Set the environment variable ``REPRO_SCALE`` to ``smoke`` (tiny, seconds),
``default`` or ``full`` (slow, maximal real data) to size every benchmark
at once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..pgxd.config import PgxdConfig
from ..simnet.cost import CostModel
from ..simnet.network import NetworkModel

#: The paper's dataset size: one billion entries.
PAPER_KEYS = 1_000_000_000

#: The paper's processor sweep (Figures 5, 6, 8).
PAPER_PROCESSORS = (8, 16, 24, 32, 40, 52)

#: The paper's in-node parallelism: 32 threads per processor.
PAPER_THREADS = 32


@dataclass(frozen=True)
class ExperimentScale:
    """Size mapping between the simulation and the paper's configuration."""

    #: Real keys moved through the simulator per experiment.
    real_keys: int = 1 << 18
    #: Modeled dataset size the costs are charged for.
    modeled_keys: int = PAPER_KEYS
    #: Processor counts to sweep.
    processors: tuple[int, ...] = PAPER_PROCESSORS
    threads: int = PAPER_THREADS
    seed: int = 2017  # the paper's year; any fixed value works

    @property
    def data_scale(self) -> float:
        return self.modeled_keys / self.real_keys

    def pgxd_config(self, **overrides) -> PgxdConfig:
        base = dict(
            threads_per_machine=self.threads,
            data_scale=self.data_scale,
        )
        base.update(overrides)
        return PgxdConfig(**base)

    def network(self) -> NetworkModel:
        return NetworkModel()

    def cost(self) -> CostModel:
        return CostModel()


_PRESETS = {
    "smoke": ExperimentScale(real_keys=1 << 14, processors=(4, 8)),
    "default": ExperimentScale(),
    "full": ExperimentScale(real_keys=1 << 21),
}


def current_scale(name: str | None = None) -> ExperimentScale:
    """Resolve the experiment scale from the argument or ``REPRO_SCALE``."""
    name = name or os.environ.get("REPRO_SCALE", "default")
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_PRESETS)}"
        ) from None


def format_table(headers: list[str], rows: list[list], *, title: str = "") -> str:
    """Render a plain-text table in the paper's row/column layout."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.3e}"
    return str(cell)


@dataclass
class Series:
    """One named data series of an experiment (a figure line)."""

    name: str
    x: list = field(default_factory=list)
    y: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.x.append(x)
        self.y.append(y)
