"""Read-buffer size sweep: why PGX.D picked 256 KB.

Section IV-B: "The size of this buffer is assigned 256 Kbyte in PGX.D based
on measuring different performances and choosing the best one."  The paper
cites the measurement without showing it; this experiment reconstructs it.

The buffer size pulls in two directions: tiny buffers fragment the exchange
into many messages (per-message overhead dominates) while the sampling
budget X = buffer/p collapses (bad splitters, imbalance); huge buffers fix
both but delay overlap (chunks arrive in big lumps, receive-side copies
bunch up behind the last chunk) and inflate the Master's sample volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.api import DistributedSorter
from ..workloads import generate
from .common import ExperimentScale, current_scale, format_table

#: Sweep around the paper's 256 KB choice.
BUFFER_SIZES = (4 * 1024, 32 * 1024, 128 * 1024, 256 * 1024, 1024 * 1024, 8 * 1024 * 1024)

PROCESSORS = 16


@dataclass
class BufferSweepResult:
    sizes: list[int]
    total_seconds: list[float]
    exchange_seconds: list[float]
    messages: list[int]
    imbalance: list[float]

    def paper_choice_competitive(self, tolerance: float = 1.10) -> bool:
        """256 KB total time within ``tolerance`` of the sweep's best."""
        at_256 = self.total_seconds[self.sizes.index(256 * 1024)]
        return at_256 <= min(self.total_seconds) * tolerance

    def small_buffers_slow_the_exchange(self, factor: float = 1.5) -> bool:
        """4KB buffers pay per-flush overheads the 256KB choice amortizes."""
        at_4k = self.exchange_seconds[0]
        at_256k = self.exchange_seconds[self.sizes.index(256 * 1024)]
        return at_4k > factor * at_256k


def run(scale: ExperimentScale | None = None) -> BufferSweepResult:
    scale = scale or current_scale()
    p = min(PROCESSORS, max(scale.processors))
    data = generate("right-skewed", scale.real_keys, seed=scale.seed)
    totals, exchanges, messages, imbalance = [], [], [], []
    for size in BUFFER_SIZES:
        sorter = DistributedSorter(
            num_processors=p,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
            read_buffer_bytes=size,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        totals.append(result.elapsed_seconds)
        exchanges.append(result.step_breakdown()["5-exchange"])
        messages.append(result.metrics.messages)
        imbalance.append(result.imbalance())
    return BufferSweepResult(list(BUFFER_SIZES), totals, exchanges, messages, imbalance)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    rows = [
        [f"{size // 1024}KB", t, e, m, i]
        for size, t, e, m, i in zip(
            result.sizes,
            result.total_seconds,
            result.exchange_seconds,
            result.messages,
            result.imbalance,
        )
    ]
    return format_table(
        ["read-buffer", "total-s", "exchange-s", "messages", "imbalance"],
        rows,
        title=f"Buffer-size sweep — the paper's 256KB choice (p={PROCESSORS}, right-skewed)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
