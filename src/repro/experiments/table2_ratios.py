"""Table II: per-processor data ratio after sorting, 10 processors.

"Table II shows the size of data on each processor after PGX.D distributed
sorting implementation having 10 processors.  It illustrates data is
distributed equally on the processors, in the case of having a dataset
containing many duplicated data entries in both right-skewed and
exponential distribution types. ... the results according to the sizes of
data in the right-skewed distribution show having the exact equal sized
9.998% for each data on the processors 2-9."

The reproduced claims: all four rows stay near 10% per processor, and the
tied-value block of the skewed rows splits into *exactly equal* ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.api import DistributedSorter
from ..workloads import DISTRIBUTIONS, generate
from .common import ExperimentScale, current_scale, format_table

PROCESSORS = 10


@dataclass
class Table2Result:
    #: distribution -> per-processor ratio array.
    ratios: dict[str, np.ndarray]

    def max_deviation(self, kind: str) -> float:
        """Largest |ratio - 1/p| for one distribution."""
        r = self.ratios[kind]
        return float(np.abs(r - 1.0 / len(r)).max())

    def tied_block_equal(self, kind: str, tol: float = 5e-4) -> bool:
        """True if at least 7 processors hold ratios equal within ``tol``
        (the paper's exactly-equal tied-value block)."""
        r = np.sort(self.ratios[kind])
        best = 1
        run = 1
        for a, b in zip(r, r[1:]):
            run = run + 1 if abs(b - a) <= tol else 1
            best = max(best, run)
        return best >= 7


def run(scale: ExperimentScale | None = None) -> Table2Result:
    scale = scale or current_scale()
    ratios: dict[str, np.ndarray] = {}
    for kind in DISTRIBUTIONS:
        data = generate(kind, scale.real_keys, seed=scale.seed)
        sorter = DistributedSorter(
            num_processors=PROCESSORS,
            threads_per_machine=scale.threads,
            data_scale=scale.data_scale,
        )
        result = sorter.sort(data)
        assert result.is_globally_sorted()
        ratios[kind] = result.ratios()
    return Table2Result(ratios)


def main(scale: ExperimentScale | None = None) -> str:
    result = run(scale)
    headers = ["distribution"] + [f"proc{i}" for i in range(PROCESSORS)]
    rows = [
        [kind] + [f"{x * 100:.3f}%" for x in ratio]
        for kind, ratio in result.ratios.items()
    ]
    return format_table(
        headers,
        rows,
        title="Table II — data ratio per processor after sorting (p=10)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(main())
