"""Communication manager: buffered, asynchronous array transfers.

Wraps the simnet point-to-point calls with PGX.D's two distinguishing
behaviours (section III):

* **buffer-granular messaging** — arrays are shipped as a train of
  read-buffer-sized (256 KB) messages, the granularity at which PGX.D's
  request buffers hand data to the wire, and
* **asynchronous execution** — with ``async_messaging`` on (the default),
  every chunk goes out as a non-blocking ``Isend`` so a worker can keep
  receiving while its sends drain; the ablation config flips this to
  blocking sends to quantify the benefit.

Transfers honour the config's ``data_scale``: a real array of ``b`` bytes is
announced (and charged on the network) as ``b * data_scale`` virtual bytes,
and the chunk count follows the *virtual* size — capped at
:data:`MAX_CHUNKS_PER_TRANSFER` so paper-scale runs don't explode the event
queue (the residual per-buffer software overhead is negligible next to the
serialization time the cap preserves exactly).

Both sides derive the same chunk plan from the announced byte count (the
sorting algorithm broadcasts range sizes before exchanging data — step 5 of
the paper).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..simnet.calls import Compute, Isend, Mark, Message, Recv, Send
from ..simnet.engine import ProcessHandle
from .buffers import num_flushes
from .config import PgxdConfig

#: Upper bound on messages per logical transfer (event-queue protection).
MAX_CHUNKS_PER_TRANSFER = 32

#: Software cost of one request-buffer hand-off (fill + flush bookkeeping),
#: charged for every buffer-sized flush the modeled transfer performs —
#: including those folded together by the chunk cap.  Matches the network
#: model's default per-message overhead.
BUFFER_FLUSH_OVERHEAD_SECONDS = 2.0e-6


def virtual_nbytes(real_nbytes: int, config: PgxdConfig) -> int:
    """Bytes a transfer occupies on the modeled wire."""
    if real_nbytes < 0:
        raise ValueError("real_nbytes must be >= 0")
    scale = config.data_scale
    if scale == 1.0:
        # round(n * 1.0) recovers n exactly for any buffer that fits in
        # memory; the unscaled default stays on an integer-only path.
        return real_nbytes
    return int(round(real_nbytes * scale))


def expected_chunks(real_nbytes: int, config: PgxdConfig) -> int:
    """Number of messages a transfer of ``real_nbytes`` will arrive in."""
    if real_nbytes == 0:
        return 0
    flushes = num_flushes(virtual_nbytes(real_nbytes, config), config.read_buffer_bytes)
    return min(flushes, MAX_CHUNKS_PER_TRANSFER)


def send_array(
    proc: ProcessHandle,
    dst: int,
    array: np.ndarray,
    tag: int,
    config: PgxdConfig,
) -> Generator:
    """Ship ``array`` to ``dst`` as buffer-granular chunks.

    Zero-length arrays send nothing (the receiver knows the count from the
    announced sizes and will not post a receive).
    """
    array = np.ascontiguousarray(array)
    real = int(array.nbytes)
    if real == 0:
        return
    # One pass over the chunk plan: virtual size and flush count are derived
    # here once instead of through expected_chunks/num_flushes per call.
    vtotal = virtual_nbytes(real, config)
    flushes = -(-vtotal // config.read_buffer_bytes)  # ceil division
    if flushes == 0:
        return
    cls = Isend if config.async_messaging else Send
    if flushes > MAX_CHUNKS_PER_TRANSFER:
        chunks = MAX_CHUNKS_PER_TRANSFER
        # The modeled transfer performs one buffer flush per
        # read_buffer_bytes; the chunk cap folds them into fewer simulated
        # messages, so the folded flushes' software cost is charged
        # explicitly.  This is what makes small request buffers measurably
        # expensive (the buffer-size sweep).
        yield Compute((flushes - chunks) * BUFFER_FLUSH_OVERHEAD_SECONDS)
    else:
        chunks = flushes
    if chunks == 1:
        yield cls(dst=dst, nbytes=vtotal, payload=array, tag=tag)
        return
    n = len(array)
    # Even element/byte split with the remainder spread across chunks, as
    # integer prefix bounds (identical to the per-chunk // arithmetic).
    steps = np.arange(chunks + 1)
    bounds = ((n * steps) // chunks).tolist()
    vbounds = ((vtotal * steps) // chunks).tolist()
    for i in range(chunks):
        yield cls(
            dst=dst,
            nbytes=vbounds[i + 1] - vbounds[i],
            payload=array[bounds[i] : bounds[i + 1]],
            tag=tag,
        )


def recv_array(
    proc: ProcessHandle,
    src: int,
    nbytes: int,
    dtype: np.dtype,
    tag: int,
    config: PgxdConfig,
) -> Generator:
    """Receive a transfer announced as ``nbytes`` *real* bytes from ``src``.

    Returns the reassembled array (empty when ``nbytes`` is zero).  Chunks
    from one source arrive in FIFO order, so reassembly is a concatenation.
    """
    dtype = np.dtype(dtype)
    if nbytes == 0:
        return np.empty(0, dtype=dtype)
    total_chunks = expected_chunks(nbytes, config)
    msg: Message = yield Recv(src=src, tag=tag)
    first = msg.payload
    if total_chunks == 1:
        out = first  # single chunk: hand the view through, zero-copy
    elif first.dtype == dtype and nbytes % dtype.itemsize == 0:
        # The announced size fixes the transfer's extent, so the receive
        # buffer is preallocated and every chunk lands at its offset (the
        # paper's step-5 discipline) — no list accumulation, no concatenate.
        out = np.empty(nbytes // dtype.itemsize, dtype=dtype)
        out[: len(first)] = first
        cursor = len(first)
        for _ in range(total_chunks - 1):
            msg = yield Recv(src=src, tag=tag)
            payload = msg.payload
            out[cursor : cursor + len(payload)] = payload
            cursor += len(payload)
        if cursor != len(out):
            raise ValueError(
                f"transfer from {src} announced {nbytes} bytes but delivered "
                f"{cursor * dtype.itemsize}"
            )
    else:
        # Sender dtype differs from the announcement (or does not tile it):
        # legacy path, which propagates the sender's dtype unchanged.
        chunks = [first]
        for _ in range(total_chunks - 1):
            msg = yield Recv(src=src, tag=tag)
            chunks.append(msg.payload)
        out = np.concatenate(chunks)
    if out.nbytes != nbytes:
        raise ValueError(
            f"transfer from {src} announced {nbytes} bytes but delivered {out.nbytes}"
        )
    return out


def exchange_arrays(
    proc: ProcessHandle,
    outgoing: list[np.ndarray],
    announced_nbytes: list[int],
    dtype: np.dtype,
    tag: int,
    config: PgxdConfig,
) -> Generator:
    """Asynchronous personalized all-to-all of arrays (paper step 5).

    ``outgoing[d]`` is the local array destined for rank ``d``;
    ``announced_nbytes[s]`` is the *real* byte count rank ``s`` announced it
    will send to this rank (obtained via the step-4 size exchange).  All
    remote sends are posted before receives are drained, so sending overlaps
    receiving — the paper's "each processor is able to send data while
    receiving data".  Returns the received arrays indexed by source rank
    (the local chunk never touches the network).
    """
    rank, size = proc.rank, proc.size
    if len(outgoing) != size or len(announced_nbytes) != size:
        raise ValueError("need exactly one outgoing array and one announced size per rank")
    dtype = np.dtype(dtype)
    out: list[np.ndarray] = [None] * size  # type: ignore[list-item]
    out[rank] = np.asarray(outgoing[rank], dtype=dtype)
    yield Mark("exchange:send")
    for offset in range(1, size):
        dst = (rank + offset) % size  # staggered to spread incast
        yield from send_array(proc, dst, np.asarray(outgoing[dst]), tag, config)
    yield Mark("exchange:send", event="end")
    # Announced sizes fix every source's extent up front: preallocate one
    # buffer per remote source and write each chunk at its FIFO cursor.
    # Multi-chunk sources whose payload dtype disagrees with ``dtype``
    # spill to the legacy concatenation path (propagating sender dtype).
    cursors = [0] * size
    spill: dict[int, list[np.ndarray]] = {}
    pending = 0
    for src in range(size):
        if src == rank:
            continue
        nbytes = announced_nbytes[src]
        chunks = expected_chunks(nbytes, config)
        pending += chunks
        if chunks <= 1 or nbytes % dtype.itemsize != 0:
            # Zero/one message: the payload view (or an empty array) is the
            # whole run — nothing to reassemble.
            spill[src] = []
        else:
            out[src] = np.empty(nbytes // dtype.itemsize, dtype=dtype)
    yield Mark("exchange:drain")
    for _ in range(pending):
        msg: Message = yield Recv(tag=tag)
        src, payload = msg.src, msg.payload
        parts = spill.get(src)
        if parts is None and payload.dtype != dtype:
            # First mismatching chunk: abandon this source's buffer.
            parts = spill[src] = []
            cursors[src] = 0
        if parts is not None:
            parts.append(payload)
        else:
            lo = cursors[src]
            out[src][lo : lo + len(payload)] = payload
            cursors[src] = lo + len(payload)
    yield Mark("exchange:drain", event="end")
    for src in range(size):
        if src == rank:
            continue
        parts = spill.get(src)
        if parts is None:
            if cursors[src] != len(out[src]):
                raise ValueError(
                    f"source {src} announced {announced_nbytes[src]} bytes "
                    f"but delivered {cursors[src] * dtype.itemsize}"
                )
        elif not parts:
            out[src] = np.empty(0, dtype=dtype)
        else:
            out[src] = np.concatenate(parts) if len(parts) > 1 else parts[0]
    return out
