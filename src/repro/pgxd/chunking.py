"""Edge chunking: balanced intra-machine work division over CSR rows.

Section III: "a new edge chunking strategy is implemented that improves task
scheduling and results in having balanced workload between the processors in
each machine."  Power-law graphs make per-vertex work wildly uneven (one hub
can hold more edges than thousands of leaves), so PGX.D splits the edge
array — not the vertex array — into near-equal chunks, splitting hub rows
across chunks where needed.  Worker threads then grab chunks as tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrGraph


@dataclass(frozen=True)
class EdgeChunk:
    """A contiguous slice of a CSR edge array, with its vertex cover.

    ``first_vertex``/``last_vertex`` are the local vertices whose adjacency
    lists intersect the chunk; the first and last rows may be partial
    (``first_edge``/``last_edge`` give the exact edge range).
    """

    first_vertex: int
    last_vertex: int
    first_edge: int
    last_edge: int

    @property
    def num_edges(self) -> int:
        return self.last_edge - self.first_edge


def chunk_edges(graph: CsrGraph, chunk_size: int) -> list[EdgeChunk]:
    """Split ``graph``'s edges into chunks of at most ``chunk_size`` edges.

    Every chunk except possibly the last holds exactly ``chunk_size`` edges;
    rows larger than ``chunk_size`` are split across several chunks (the
    property that balances hub-heavy graphs).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    m = graph.num_edges
    if m == 0:
        return []
    boundaries = np.arange(0, m + chunk_size, chunk_size)
    boundaries[-1] = min(boundaries[-1], m)
    if boundaries[-1] != m:
        boundaries = np.append(boundaries, m)
    # Vertex covering each edge boundary: the row r with
    # row_ptr[r] <= e < row_ptr[r+1].
    chunks: list[EdgeChunk] = []
    row_of = np.searchsorted(graph.row_ptr, boundaries[:-1], side="right") - 1
    for i in range(len(boundaries) - 1):
        first_e, last_e = int(boundaries[i]), int(boundaries[i + 1])
        if first_e == last_e:
            continue
        first_v = int(row_of[i])
        last_v = int(np.searchsorted(graph.row_ptr, last_e - 1, side="right") - 1)
        chunks.append(EdgeChunk(first_v, last_v, first_e, last_e))
    return chunks


def chunk_imbalance(chunks: list[EdgeChunk]) -> float:
    """Max-over-mean edge count across chunks (1.0 = perfectly balanced)."""
    if not chunks:
        return 1.0
    sizes = np.array([c.num_edges for c in chunks], dtype=np.float64)
    return float(sizes.max() / sizes.mean())


def vertex_chunk_imbalance(graph: CsrGraph, num_chunks: int) -> float:
    """Imbalance of the naive vertex-block strategy, for comparison.

    Splits vertices (not edges) into equal blocks and measures the edge-count
    imbalance — the behaviour edge chunking was introduced to fix.
    """
    if num_chunks < 1:
        raise ValueError("num_chunks must be >= 1")
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return 1.0
    bounds = np.linspace(0, n, num_chunks + 1).astype(np.int64)
    sizes = np.diff(graph.row_ptr[bounds]).astype(np.float64)
    nonzero_mean = sizes.mean() if sizes.mean() > 0 else 1.0
    return float(sizes.max() / nonzero_mean)
