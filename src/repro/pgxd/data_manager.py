"""Data manager: per-machine storage with memory accounting.

PGX.D's data manager owns the machine-local data (graph CSR, property
arrays, sort buffers) and the request buffers for outgoing messages.  Here
it additionally feeds the memory series of Figure 11: arrays registered as
*resident* count toward RSS; scratch registered as *temporary* counts toward
the temporary pool and must be released before the program ends.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from ..simnet.metrics import MemoryTracker
from .buffers import RequestBuffer
from .config import PgxdConfig


class DataManager:
    """Named array store + request buffers for one simulated machine."""

    def __init__(self, config: PgxdConfig, memory: MemoryTracker):
        self.config = config
        self.memory = memory
        self._arrays: dict[str, np.ndarray] = {}
        self._scaled_bytes: dict[str, int] = {}
        self._request_buffers: dict[int, RequestBuffer] = {}

    def scaled(self, nbytes: int) -> int:
        """Real bytes -> modeled bytes under the config's data_scale."""
        return int(round(nbytes * self.config.data_scale))

    # ------------------------------------------------------------ arrays

    def store(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register ``array`` as resident data under ``name``.

        The footprint is charged at the *modeled* size (data_scale applied).
        Replacing an existing name frees the old array's footprint first.
        """
        if name in self._arrays:
            self.drop(name)
        self._arrays[name] = array
        self._scaled_bytes[name] = self.scaled(int(array.nbytes))
        self.memory.alloc(self._scaled_bytes[name])
        return array

    def get(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise KeyError(f"no array named {name!r} in data manager") from None

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def drop(self, name: str) -> None:
        """Unregister ``name`` and release its footprint."""
        array = self._arrays.pop(name, None)
        if array is None:
            raise KeyError(f"no array named {name!r} in data manager")
        self.memory.free(self._scaled_bytes.pop(name))

    def resident_bytes(self) -> int:
        """Modeled resident footprint of the registered arrays."""
        return sum(self._scaled_bytes.values())

    @contextmanager
    def scratch(self, nbytes: int, label: str | None = None) -> Iterator[None]:
        """Account ``nbytes`` (real) of temporary memory for the scope.

        Used for merge buffers and partition staging: allocated during the
        step, freed at its end — the paper's light-blue memory in Figure 11.
        Charged at the modeled (data_scale) size.
        """
        scaled = self.scaled(nbytes)
        self.memory.alloc(scaled, temporary=True)
        try:
            yield
        finally:
            self.memory.free(scaled, temporary=True)

    # --------------------------------------------------------- buffering

    def request_buffer(self, dst: int) -> RequestBuffer:
        """The outgoing request buffer for destination machine ``dst``."""
        buf = self._request_buffers.get(dst)
        if buf is None:
            buf = RequestBuffer(
                capacity_bytes=self.config.read_buffer_bytes,
                watermark=self.config.flush_watermark,
            )
            self._request_buffers[dst] = buf
        return buf

    def total_flushes(self) -> int:
        return sum(b.flush_count for b in self._request_buffers.values())
