"""DistributedGraph: the user-facing handle over a loaded graph.

Section III: "by adding this distributed sorting method in PGX.D, user can
also easily sort data of their multiple graphs with different types and
implement more analysis on them, such as retrieving top values from their
graph data or implementing binary search on the sorted data."

A :class:`DistributedGraph` owns the per-machine CSR partitions produced by
:meth:`PgxdRuntime.load_graph` plus named vertex/edge property columns, and
exposes the sorting-backed analytics: ``sort_property`` runs the paper's
distributed sort *in place* over the already-distributed property blocks
(no driver-side regathering), and top-k / search queries ride the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .csr import CsrGraph
from .ghost import GhostSelection
from .partition import BlockPartition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.result import SortResult
    from .runtime import PgxdRuntime


@dataclass
class DistributedGraph:
    """A graph partitioned across the simulated cluster, plus properties."""

    runtime: "PgxdRuntime"
    partitions: list[CsrGraph]
    partition_map: BlockPartition
    ghosts: GhostSelection
    _vertex_properties: dict[str, np.ndarray] = field(default_factory=dict)
    _edge_properties: dict[str, list[np.ndarray]] = field(default_factory=dict)

    # ----------------------------------------------------------- structure

    @property
    def num_machines(self) -> int:
        return len(self.partitions)

    @property
    def num_vertices(self) -> int:
        return self.partition_map.num_vertices

    @property
    def num_edges(self) -> int:
        return sum(g.num_edges for g in self.partitions)

    def degrees(self) -> np.ndarray:
        """Global out-degree array assembled from the partitions."""
        out = np.zeros(self.num_vertices, dtype=np.int64)
        for g in self.partitions:
            out[g.global_ids] = g.degrees()
        return out

    def machine_of_vertex(self, vertex: int) -> int:
        return self.partition_map.owner(vertex)

    # ---------------------------------------------------------- properties

    def set_vertex_property(self, name: str, values: np.ndarray) -> None:
        """Attach a per-vertex column (global id order)."""
        values = np.asarray(values)
        if len(values) != self.num_vertices:
            raise ValueError(
                f"property has {len(values)} entries for {self.num_vertices} vertices"
            )
        self._vertex_properties[name] = values

    def set_edge_property(self, name: str, per_machine: list[np.ndarray]) -> None:
        """Attach a per-edge column, one block per machine's edge array."""
        if len(per_machine) != self.num_machines:
            raise ValueError("need one edge-property block per machine")
        for g, block in zip(self.partitions, per_machine):
            if len(block) != g.num_edges:
                raise ValueError("edge property block does not match edge count")
        self._edge_properties[name] = [np.asarray(b) for b in per_machine]

    def vertex_property(self, name: str) -> np.ndarray:
        try:
            return self._vertex_properties[name]
        except KeyError:
            raise KeyError(f"no vertex property {name!r}") from None

    def property_names(self) -> tuple[list[str], list[str]]:
        return sorted(self._vertex_properties), sorted(self._edge_properties)

    # ------------------------------------------------------------- sorting

    def _sorter(self, **overrides):
        from ..core.api import DistributedSorter

        return DistributedSorter(
            num_processors=self.num_machines,
            network=self.runtime.network,
            cost=self.runtime.cost,
            **overrides,
        )

    def sort_vertex_property(self, name: str, **overrides) -> "SortResult":
        """Distributed sort of a vertex property, blocks as partitioned.

        Each machine contributes the slice of the column covering its owned
        vertices — the data is already where PGX.D keeps it, so no driver
        gather happens before the sort.
        """
        values = self.vertex_property(name)
        blocks = [
            values[slice(*self.partition_map.bounds(m))]
            for m in range(self.num_machines)
        ]
        offsets = np.array(
            [self.partition_map.bounds(m)[0] for m in range(self.num_machines)],
            dtype=np.int64,
        )
        return self._sorter(**overrides).sort_partitioned(blocks, input_offsets=offsets)

    def sort_edge_property(self, name: str, **overrides) -> "SortResult":
        """Distributed sort of a per-edge column."""
        try:
            blocks = self._edge_properties[name]
        except KeyError:
            raise KeyError(f"no edge property {name!r}") from None
        return self._sorter(**overrides).sort_partitioned(blocks)

    def sort_vertex_properties(self, names: list[str], **overrides) -> dict[str, "SortResult"]:
        """Sort several vertex properties in one cluster launch.

        The paper's "sort multiple different data simultaneously" at the
        graph level: the property columns share one warm simulation (see
        :meth:`DistributedSorter.sort_multi`).  The partition layout of the
        columns matches the graph's block partition, so the data never
        leaves its owning machine before the sort.
        """
        columns = [self.vertex_property(name) for name in names]
        results = self._sorter(**overrides).sort_multi(columns)
        return dict(zip(names, results))

    def sort_degrees(self, **overrides) -> "SortResult":
        """Sort the out-degree of every vertex (hub analytics)."""
        degrees = self.degrees()
        self.set_vertex_property("__degree__", degrees)
        return self.sort_vertex_property("__degree__", **overrides)

    def top_degree_vertices(self, k: int) -> np.ndarray:
        """Global ids of the k highest-out-degree vertices (descending)."""
        if k < 0:
            raise ValueError("k must be >= 0")
        result = self.sort_degrees()
        top_global_ranks = range(result.total_keys - 1, max(result.total_keys - 1 - k, -1), -1)
        ids = []
        cum = np.cumsum([len(a) for a in result.per_processor])
        for rank in top_global_ranks:
            proc = int(np.searchsorted(cum, rank, side="right"))
            local = rank - (cum[proc - 1] if proc else 0)
            op, oi = result.origin_of(proc, int(local))
            start, _ = self.partition_map.bounds(op)
            ids.append(start + oi)
        return np.array(ids, dtype=np.int64)


def load_distributed_graph(
    runtime: "PgxdRuntime",
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
) -> DistributedGraph:
    """Load an edge list through the runtime and wrap it as a graph handle."""
    partitions, ghosts, _ = runtime.load_graph(src, dst, num_vertices)
    return DistributedGraph(
        runtime=runtime,
        partitions=partitions,
        partition_map=BlockPartition(num_vertices, runtime.num_machines),
        ghosts=ghosts,
    )
