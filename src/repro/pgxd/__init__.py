"""Simulated PGX.D runtime: the framework substrate the paper builds on.

Reimplements, on top of :mod:`repro.simnet`, the PGX.D behaviours the paper
relies on: the task manager's worker-thread pool, the data manager's 256 KB
request buffers and CSR graph storage, the communication manager's
asynchronous buffered transfers, ghost-node selection, and edge chunking.
"""

from .buffers import RequestBuffer, num_flushes, split_for_buffers
from .chunking import EdgeChunk, chunk_edges, chunk_imbalance, vertex_chunk_imbalance
from .comm_manager import exchange_arrays, expected_chunks, recv_array, send_array
from .config import READ_BUFFER_BYTES, PgxdConfig
from .csr import CsrGraph
from .data_manager import DataManager
from .ghost import GhostSelection, count_crossing_edges, select_ghosts
from .graph import DistributedGraph, load_distributed_graph
from .algorithms import (
    BfsResult,
    PageRankResult,
    WccResult,
    distributed_bfs,
    distributed_pagerank,
    distributed_wcc,
)
from .partition import BlockPartition
from .runtime import Machine, MachineProgram, PgxdRuntime, RunResult
from .task_manager import TaskManager

__all__ = [
    "READ_BUFFER_BYTES",
    "BfsResult",
    "BlockPartition",
    "CsrGraph",
    "DataManager",
    "DistributedGraph",
    "EdgeChunk",
    "GhostSelection",
    "Machine",
    "MachineProgram",
    "PgxdConfig",
    "PgxdRuntime",
    "RequestBuffer",
    "RunResult",
    "TaskManager",
    "WccResult",
    "chunk_edges",
    "chunk_imbalance",
    "PageRankResult",
    "count_crossing_edges",
    "distributed_bfs",
    "distributed_pagerank",
    "distributed_wcc",
    "exchange_arrays",
    "expected_chunks",
    "load_distributed_graph",
    "num_flushes",
    "recv_array",
    "select_ghosts",
    "send_array",
    "split_for_buffers",
    "vertex_chunk_imbalance",
]
