"""PGX.D runtime: machines, program launch, and distributed graph loading.

:class:`PgxdRuntime` is the user-facing entry point of the substrate.  It
assembles a virtual cluster (simnet engine + network + cost model) and runs
SPMD *programs*: generator functions ``fn(machine, *args)`` receiving a
:class:`Machine` facade that bundles the simnet process handle with the
PGX.D managers (task, data) and configuration.

The distributed sorting algorithm (:mod:`repro.core`) and all baselines run
as programs on this runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Sequence

import numpy as np

from ..simnet.calls import Compute
from ..simnet.collectives import alltoallv
from ..simnet.cost import CostModel
from ..simnet.engine import ProcessHandle, Simulator
from ..simnet.metrics import ClusterMetrics
from ..simnet.network import NetworkModel
from .chunking import chunk_edges
from .config import PgxdConfig
from .csr import CsrGraph
from .data_manager import DataManager
from .ghost import GhostSelection, select_ghosts
from .partition import BlockPartition
from .task_manager import TaskManager

MachineProgram = Callable[..., Generator]


class Machine:
    """One simulated PGX.D machine, as seen by a running program."""

    def __init__(self, proc: ProcessHandle, config: PgxdConfig, cost: CostModel):
        self.proc = proc
        self.config = config
        self.cost = cost
        self.tasks = TaskManager(config.threads_per_machine, cost)
        self.data = DataManager(config, proc.metrics.memory)
        # Reusable storage for data-plane temporaries (receive buffers,
        # provenance staging).  repro.core imports repro.pgxd at module
        # level, so the reverse import must stay local to avoid a cycle.
        from ..core.scratch import ScratchArena

        self.scratch = ScratchArena()

    @property
    def rank(self) -> int:
        return self.proc.rank

    @property
    def size(self) -> int:
        return self.proc.size

    @property
    def threads(self) -> int:
        return self.config.threads_per_machine

    def compute(self, seconds: float, label: str | None = None) -> Compute:
        """Convenience constructor for a labelled compute call."""
        return Compute(seconds, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(rank={self.rank}, size={self.size}, threads={self.threads})"


@dataclass
class RunResult:
    """Outcome of one runtime launch."""

    #: Program return values, ordered by rank.
    results: list[Any]
    #: Cluster-wide virtual-time metrics.
    metrics: ClusterMetrics

    @property
    def makespan(self) -> float:
        return self.metrics.makespan


class PgxdRuntime:
    """Factory for simulated PGX.D clusters.

    A runtime instance is reusable: every :meth:`run` builds a fresh
    simulator with the same configuration, so repeated experiments are
    independent and deterministic.
    """

    def __init__(
        self,
        num_machines: int,
        config: PgxdConfig | None = None,
        network: NetworkModel | None = None,
        cost: CostModel | None = None,
        *,
        rank_speed: Sequence[float] | None = None,
        trace: bool = False,
        tracer: Any = None,
        faults: Any = None,
    ):
        """``rank_speed`` makes the cluster heterogeneous: machine ``m``'s
        compute rates are multiplied by ``rank_speed[m]`` (1.0 = nominal,
        0.5 = half-speed straggler).  The network is unaffected.

        ``tracer`` attaches a structured :class:`repro.obs.Tracer` to every
        simulator this runtime builds; when None (the default) an ambient
        ``repro.obs.capture`` scope, if active, supplies one per run.

        ``faults`` attaches a :class:`repro.simnet.faults.FaultPlan` to
        every run; when None, an ambient ``inject_faults`` scope (if
        active) supplies one — otherwise the run is fault-free."""
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.num_machines = num_machines
        self.config = config or PgxdConfig()
        self.network = network or NetworkModel()
        self.cost = cost or CostModel()
        if rank_speed is not None:
            if len(rank_speed) != num_machines:
                raise ValueError("rank_speed needs one factor per machine")
            if any(s <= 0 for s in rank_speed):
                raise ValueError("rank speeds must be positive")
        self.rank_speed = list(rank_speed) if rank_speed is not None else None
        self.trace = trace
        self.tracer = tracer
        self.faults = faults

    def cost_for_rank(self, rank: int) -> CostModel:
        """The (possibly slowed) cost model of one machine."""
        if self.rank_speed is None or self.rank_speed[rank] == 1.0:
            return self.cost
        s = self.rank_speed[rank]
        return replace(
            self.cost,
            compare_rate=self.cost.compare_rate * s,
            merge_rate=self.cost.merge_rate * s,
            copy_bandwidth=self.cost.copy_bandwidth * s,
            machine_mem_bandwidth=self.cost.machine_mem_bandwidth * s,
        )

    def run(self, program: MachineProgram, *args: Any, **kwargs: Any) -> RunResult:
        """Run ``program(machine, *args, **kwargs)`` on every machine."""
        sim = Simulator(
            self.num_machines,
            self.network,
            trace=self.trace,
            tracer=self.tracer,
            faults=self.faults,
        )

        # Plain function, not a generator: returning the program's generator
        # directly (instead of `yield from` delegation) removes one Python
        # frame from every resume — material when a run spans tens of
        # thousands of events.  The engine only requires that the factory
        # *return* a generator.
        def bootstrap(proc: ProcessHandle, *a: Any, **kw: Any) -> Generator:
            machine = Machine(proc, self.config, self.cost_for_rank(proc.rank))
            return program(machine, *a, **kw)

        sim.add_program(bootstrap, *args, **kwargs)
        metrics = sim.run()
        return RunResult(results=sim.results(), metrics=metrics)

    def run_per_rank(self, programs: list[MachineProgram], *args: Any) -> RunResult:
        """Run a different program per rank (e.g. driver + executors)."""
        if len(programs) != self.num_machines:
            raise ValueError(
                f"need {self.num_machines} programs, got {len(programs)}"
            )
        sim = Simulator(
            self.num_machines,
            self.network,
            trace=self.trace,
            tracer=self.tracer,
            faults=self.faults,
        )
        for rank, program in enumerate(programs):

            def bootstrap(proc: ProcessHandle, _program=program, *a: Any) -> Generator:
                machine = Machine(proc, self.config, self.cost_for_rank(proc.rank))
                return _program(machine, *a)

            sim.add_process(bootstrap, *args, rank=rank)
        metrics = sim.run()
        return RunResult(results=sim.results(), metrics=metrics)

    # --------------------------------------------------------- graph load

    def load_graph(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
    ) -> tuple[list[CsrGraph], GhostSelection, RunResult]:
        """Distribute an edge list across the cluster and build local CSRs.

        Models PGX.D's loading pipeline: vertices are block-partitioned,
        ghost nodes are selected from the crossing-edge profile, edges are
        routed to their source-owner machine through an all-to-all, and each
        machine builds its CSR and chunks its edges for the worker pool.

        Returns ``(local_graphs, ghost_selection, run_result)`` where
        ``local_graphs[m]`` holds machine ``m``'s partition with vertex ids
        localized and ``global_ids`` recording the mapping.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        partition = BlockPartition(num_vertices, self.num_machines)
        ghosts = select_ghosts(src, dst, partition, self.config.ghost_node_budget)
        owners = partition.owners(src)

        def loader(machine: Machine) -> Generator:
            rank = machine.rank
            # Each machine starts holding an equal slice of the raw edge
            # list (as if read from a striped file) and routes every edge to
            # the machine owning its source vertex.
            lo = len(src) * rank // machine.size
            hi = len(src) * (rank + 1) // machine.size
            my_src, my_dst, my_owners = src[lo:hi], dst[lo:hi], owners[lo:hi]
            yield machine.compute(
                machine.cost.scan_seconds(my_src.nbytes + my_dst.nbytes, machine.threads),
                label="load:scan",
            )
            chunks = []
            for m in range(machine.size):
                mask = my_owners == m
                chunks.append(np.stack([my_src[mask], my_dst[mask]]) if mask.any() else np.empty((2, 0), dtype=np.int64))
            received = yield from alltoallv(machine.proc, chunks)
            local_src = np.concatenate([c[0] for c in received])
            local_dst = np.concatenate([c[1] for c in received])
            # CSR build cost: counting sort over local edges.
            yield machine.compute(
                machine.cost.scan_seconds(local_src.nbytes * 3, machine.threads),
                label="load:csr",
            )
            start, stop = partition.bounds(rank)
            graph = CsrGraph.from_edges(
                stop - start,
                local_src - start,
                local_dst,
                global_ids=np.arange(start, stop, dtype=np.int64),
            )
            machine.data.memory.alloc(graph.nbytes())
            chunk_edges(graph, machine.config.edge_chunk_size)
            return graph

        result = self.run(loader)
        return list(result.results), ghosts, result
