"""Ghost-node selection: replicating hub vertices to cut crossing edges.

Section III of the paper: PGX.D "guarantees low communication overhead by
applying ghost nodes selection that results in decreasing number of the
crossing edges as well as decreasing communication between different
processors."  The standard realisation (from the PGX.D SC'15 paper) is to
replicate the highest-degree vertices on every machine so edges pointing at
them become machine-local.

This module selects ghost candidates from a degree profile and quantifies
the crossing-edge reduction, which feeds the graph-loading communication
cost in the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .partition import BlockPartition


@dataclass(frozen=True)
class GhostSelection:
    """Result of ghost-node selection for a distributed graph."""

    #: Global ids of vertices replicated on every machine.
    ghost_vertices: np.ndarray
    #: Crossing edges before ghosting.
    crossing_edges_before: int
    #: Crossing edges after ghosting (edges into ghosts become local).
    crossing_edges_after: int

    @property
    def reduction(self) -> float:
        """Fraction of crossing edges eliminated (0 when nothing crossed)."""
        if self.crossing_edges_before == 0:
            return 0.0
        return 1.0 - self.crossing_edges_after / self.crossing_edges_before


def count_crossing_edges(
    src: np.ndarray, dst: np.ndarray, partition: BlockPartition
) -> int:
    """Edges whose endpoints live on different machines."""
    return int(np.sum(partition.owners(src) != partition.owners(dst)))


def select_ghosts(
    src: np.ndarray,
    dst: np.ndarray,
    partition: BlockPartition,
    budget: int,
) -> GhostSelection:
    """Pick up to ``budget`` vertices to replicate everywhere.

    Candidates are ranked by *in-degree over crossing edges* — replicating a
    vertex only helps for edges that would otherwise leave their source
    machine, so hubs that attract remote edges rank first.  This mirrors
    PGX.D's high-degree ghost selection.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src and dst must have the same shape")
    crossing_mask = partition.owners(src) != partition.owners(dst)
    before = int(crossing_mask.sum())
    if budget <= 0 or before == 0:
        return GhostSelection(np.empty(0, dtype=np.int64), before, before)
    # In-degree restricted to crossing edges.
    crossing_dst = dst[crossing_mask]
    remote_in_degree = np.bincount(crossing_dst, minlength=partition.num_vertices)
    order = np.argsort(remote_in_degree, kind="stable")[::-1]
    ghosts = order[:budget]
    ghosts = ghosts[remote_in_degree[ghosts] > 0]
    ghost_set = np.zeros(partition.num_vertices, dtype=bool)
    ghost_set[ghosts] = True
    after = int(np.sum(crossing_mask & ~ghost_set[dst]))
    return GhostSelection(np.sort(ghosts).astype(np.int64), before, after)
