"""Request buffers: PGX.D's buffer-granular message batching.

PGX.D's data manager accumulates outgoing entries per destination machine in
fixed-size request buffers; the task manager flushes a buffer when it fills
(or when the worker has drained its task list).  Batching many small writes
into 256 KB messages is one of the framework behaviours the paper credits
for bandwidth-efficient communication, so we model it explicitly: a payload
of ``n`` bytes to one destination becomes ``ceil(n / buffer)`` simulated
messages rather than one giant or many tiny ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def num_flushes(nbytes: int, buffer_bytes: int) -> int:
    """Number of buffer-sized messages needed to move ``nbytes``."""
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    return -(-nbytes // buffer_bytes)  # ceil division


def split_for_buffers(array: np.ndarray, buffer_bytes: int) -> list[np.ndarray]:
    """Split ``array`` into views of at most ``buffer_bytes`` each.

    Views (not copies) keep the simulated data path zero-copy, mirroring how
    PGX.D hands buffer segments to the communication manager.
    """
    if buffer_bytes <= 0:
        raise ValueError("buffer_bytes must be positive")
    if array.size == 0:
        return []
    per_chunk = max(buffer_bytes // array.itemsize, 1)
    return [array[i : i + per_chunk] for i in range(0, len(array), per_chunk)]


@dataclass
class RequestBuffer:
    """Accumulates small writes destined for one remote machine.

    Used by the graph-loading path, where edges are streamed to their owner
    machine entry by entry.  ``append`` returns the flushed batch whenever
    the buffer crosses the watermark, else ``None``.
    """

    capacity_bytes: int
    watermark: float = 1.0
    _items: list = field(default_factory=list)
    _bytes: int = 0
    flush_count: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0.0 < self.watermark <= 1.0:
            raise ValueError("watermark must be in (0, 1]")

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    @property
    def pending_items(self) -> int:
        return len(self._items)

    def append(self, item, nbytes: int) -> list | None:
        """Add one entry; returns the batch to send if the buffer filled."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._items.append(item)
        self._bytes += nbytes
        if self._bytes >= self.capacity_bytes * self.watermark:
            return self.flush()
        return None

    def extend_array(self, array: np.ndarray) -> list[list]:
        """Bulk-append every entry of a 1-D ``array``; returns flushed batches.

        Flush points and ``flush_count`` are exactly those of calling
        ``append(entry, array.itemsize)`` per element, but the work is
        constant per *flushed buffer* rather than per element: each batch
        carries one array view covering the entries that filled it (after
        any individually-appended items already pending).
        """
        if array.ndim != 1:
            raise ValueError("extend_array expects a 1-D array")
        n = len(array)
        itemsize = int(array.itemsize)
        threshold = self.capacity_bytes * self.watermark
        if n == 0 or itemsize == 0:
            self._items.extend(array[i : i + 1] for i in range(n))
            return []
        batches: list[list] = []
        start = 0
        while True:
            # First entry index at which pending bytes reach the watermark
            # (pending is always below it between appends).
            fill = math.ceil((threshold - self._bytes) / itemsize)
            if start + fill > n:
                break
            self._items.append(array[start : start + fill])
            self._bytes += fill * itemsize
            batches.append(self.flush())
            start += fill
        if start < n:
            self._items.append(array[start:])
            self._bytes += (n - start) * itemsize
        return batches

    def flush(self) -> list | None:
        """Drain the buffer; returns the pending batch or None if empty."""
        if not self._items:
            return None
        batch, self._items = self._items, []
        self._bytes = 0
        self.flush_count += 1
        return batch
