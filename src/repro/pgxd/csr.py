"""Compressed Sparse Row graph storage, as used by PGX.D's data manager.

The paper's section III: "Graph data across different machines is maintained
within the data manager and they are stored in the Compressed Sparse Row
(CSR) data structure on each machine."  This module provides the CSR
container used by the graph-loading path and the Twitter-workload benchmarks
(degree extraction, neighbour iteration, top-value queries on sorted data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrGraph:
    """An immutable CSR adjacency structure over ``num_vertices`` vertices.

    ``row_ptr`` has ``num_vertices + 1`` entries; the neighbours of vertex
    ``v`` are ``col_idx[row_ptr[v]:row_ptr[v+1]]``.  Vertex ids are local;
    a separate ``global_ids`` array (optional) maps them back to the global
    id space when the graph is a partition of a distributed graph.
    """

    row_ptr: np.ndarray
    col_idx: np.ndarray
    global_ids: np.ndarray | None = None

    def __post_init__(self) -> None:
        row_ptr = np.asarray(self.row_ptr)
        col_idx = np.asarray(self.col_idx)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise ValueError("row_ptr and col_idx must be one-dimensional")
        if len(row_ptr) == 0:
            raise ValueError("row_ptr must have at least one entry")
        if row_ptr[0] != 0:
            raise ValueError("row_ptr must start at 0")
        if row_ptr[-1] != len(col_idx):
            raise ValueError(
                f"row_ptr ends at {row_ptr[-1]} but col_idx has {len(col_idx)} entries"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")
        if self.global_ids is not None and len(self.global_ids) != len(row_ptr) - 1:
            raise ValueError("global_ids must have one entry per vertex")

    # ------------------------------------------------------------ queries

    @property
    def num_vertices(self) -> int:
        return len(self.row_ptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.col_idx)

    def degree(self, v: int) -> int:
        """Out-degree of local vertex ``v``."""
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def degrees(self) -> np.ndarray:
        """Out-degrees of all local vertices."""
        return np.diff(self.row_ptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour view (no copy) of local vertex ``v``."""
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def nbytes(self) -> int:
        """Memory footprint of the structure arrays."""
        total = self.row_ptr.nbytes + self.col_idx.nbytes
        if self.global_ids is not None:
            total += self.global_ids.nbytes
        return int(total)

    # ---------------------------------------------------------- factories

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        src: np.ndarray,
        dst: np.ndarray,
        *,
        global_ids: np.ndarray | None = None,
    ) -> "CsrGraph":
        """Build a CSR graph from parallel (src, dst) edge arrays.

        Edges are counting-sorted by source (O(V + E)), matching how a bulk
        loader materializes CSR; neighbour lists preserve input order within
        a source.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        if num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")
        if src.size and (src.min() < 0 or src.max() >= num_vertices):
            raise ValueError("src vertex id out of range")
        counts = np.bincount(src, minlength=num_vertices)
        row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        order = np.argsort(src, kind="stable")
        return cls(row_ptr=row_ptr, col_idx=dst[order], global_ids=global_ids)
