"""Vertex partitioning of a distributed graph across machines.

PGX.D block-partitions the vertex id space during graph loading; the data
manager then knows the owner machine of any vertex from its id alone ("The
location of each node is identified with this manager"), which is what lets
the communication manager route request buffers without a directory service.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BlockPartition:
    """Contiguous block partition of ``[0, num_vertices)`` over machines.

    The first ``num_vertices % num_machines`` machines own one extra vertex,
    so block sizes differ by at most one.
    """

    num_vertices: int
    num_machines: int

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be >= 0")

    def owner(self, vertex: int) -> int:
        """Machine owning global ``vertex``."""
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} outside [0, {self.num_vertices})")
        base, extra = divmod(self.num_vertices, self.num_machines)
        boundary = (base + 1) * extra
        if vertex < boundary:
            return vertex // (base + 1)
        if base == 0:
            raise IndexError(f"vertex {vertex} outside [0, {self.num_vertices})")
        return extra + (vertex - boundary) // base

    def owners(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owner` for an array of vertex ids."""
        vertices = np.asarray(vertices, dtype=np.int64)
        base, extra = divmod(self.num_vertices, self.num_machines)
        boundary = (base + 1) * extra
        low = vertices // max(base + 1, 1)
        high = extra + (vertices - boundary) // max(base, 1)
        return np.where(vertices < boundary, low, high).astype(np.int64)

    def bounds(self, machine: int) -> tuple[int, int]:
        """Global [start, stop) vertex range owned by ``machine``."""
        if not 0 <= machine < self.num_machines:
            raise IndexError(f"machine {machine} outside [0, {self.num_machines})")
        base, extra = divmod(self.num_vertices, self.num_machines)
        if machine < extra:
            start = machine * (base + 1)
            return start, start + base + 1
        start = extra * (base + 1) + (machine - extra) * base
        return start, start + base

    def local_count(self, machine: int) -> int:
        start, stop = self.bounds(machine)
        return stop - start

    def to_local(self, machine: int, vertices: np.ndarray) -> np.ndarray:
        """Map global vertex ids owned by ``machine`` to local ids."""
        start, stop = self.bounds(machine)
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size and (vertices.min() < start or vertices.max() >= stop):
            raise ValueError(f"vertex ids outside machine {machine} block [{start},{stop})")
        return vertices - start

    def to_global(self, machine: int, local: np.ndarray) -> np.ndarray:
        """Map local ids on ``machine`` back to global vertex ids."""
        start, stop = self.bounds(machine)
        local = np.asarray(local, dtype=np.int64)
        if local.size and (local.min() < 0 or local.max() >= stop - start):
            raise ValueError(f"local ids outside machine {machine} block")
        return local + start
