"""PGX.D runtime configuration.

The constants mirror what the paper reports about PGX.D's deployment:
a 256 KB read buffer in the data manager (section IV-B: "The size of this
buffer is assigned 256 Kbyte in PGX.D based on measuring different
performances"), 32 worker threads per machine for in-node parallelization
(section V), and asynchronous local/remote requests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

#: The paper's read-buffer size: 256 Kbyte.
READ_BUFFER_BYTES = 256 * 1024


@dataclass(frozen=True)
class PgxdConfig:
    """Tunable knobs of the simulated PGX.D runtime."""

    #: Data-manager read/request buffer size in bytes (paper: 256 KB).
    read_buffer_bytes: int = READ_BUFFER_BYTES
    #: Worker threads per machine used for in-node parallelization.
    threads_per_machine: int = 32
    #: Whether remote sends are asynchronous (PGX.D) or block the worker
    #: (set False only for the ablation benchmarks).
    async_messaging: bool = True
    #: Whether the balanced-merge handler runs merge steps in parallel.
    parallel_merge: bool = True
    #: Fraction of request-buffer capacity that triggers an eager flush.
    flush_watermark: float = 1.0
    #: Number of ghost-node candidates per machine during graph loading.
    ghost_node_budget: int = 64
    #: Target edges per chunk for the edge-chunking strategy.
    edge_chunk_size: int = 4096
    #: Virtual data multiplier: every real key in the simulation stands for
    #: ``data_scale`` keys of the modeled deployment.  Data-proportional
    #: costs (sorting, merging, exchange bytes, memory) are charged at the
    #: scaled size; protocol traffic (samples, splitters, size
    #: announcements) is not scaled.  This is how the benchmarks run the
    #: paper's 1-billion-key configuration while moving ~2^20 real keys.
    data_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.read_buffer_bytes <= 0:
            raise ValueError("read_buffer_bytes must be positive")
        if self.threads_per_machine < 1:
            raise ValueError("threads_per_machine must be >= 1")
        if not 0.0 < self.flush_watermark <= 1.0:
            raise ValueError("flush_watermark must be in (0, 1]")
        if self.ghost_node_budget < 0:
            raise ValueError("ghost_node_budget must be >= 0")
        if self.edge_chunk_size < 1:
            raise ValueError("edge_chunk_size must be >= 1")
        if self.data_scale <= 0:
            raise ValueError("data_scale must be positive")

    def with_overrides(self, **kwargs: Any) -> "PgxdConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def sample_bytes_per_processor(self, num_processors: int) -> int:
        """The paper's sampling budget: ``256KB / p`` bytes per processor.

        This is the volume of regular samples each processor ships to the
        Master so that the Master's receive buffer holds exactly one read
        buffer's worth of samples in total (section IV-B).
        """
        if num_processors < 1:
            raise ValueError("num_processors must be >= 1")
        return max(self.read_buffer_bytes // num_processors, 1)
