"""Distributed graph algorithms on the PGX.D runtime: PageRank and BFS.

The paper builds its sort *inside* a graph engine; these two classic
analytics justify the substrate the same way PGX.D's own paper does, and
they make the runtime's framework features measurable:

* **remote-write batching** — per-edge contributions to remote vertices are
  buffered into 256KB request buffers (the data manager's granularity);
* **ghost nodes** — contributions to replicated hub vertices accumulate
  locally and merge once per iteration, eliminating their per-edge remote
  writes (section III: ghost selection "results in decreasing number of the
  crossing edges as well as decreasing communication").

Numerics are exact (verified against networkx in tests); only time and
traffic are modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..simnet.calls import Compute
from ..simnet.collectives import allgather, alltoallv
from ..simnet.metrics import ClusterMetrics
from .partition import BlockPartition
from .runtime import Machine, PgxdRuntime

#: Modeled bytes of one buffered remote write request (vertex id + value).
REMOTE_WRITE_BYTES = 12


@dataclass
class PageRankResult:
    """Converged ranks plus the run's traffic profile."""

    ranks: np.ndarray
    iterations: int
    metrics: ClusterMetrics
    #: Modeled remote-write bytes saved by ghosting (0 when disabled).
    ghosted_write_bytes: int

    @property
    def remote_bytes(self) -> int:
        return self.metrics.remote_bytes


def distributed_pagerank(
    runtime: PgxdRuntime,
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    iterations: int = 20,
    damping: float = 0.85,
    use_ghosts: bool = True,
) -> PageRankResult:
    """Power-iteration PageRank over a block-partitioned edge list.

    Each machine owns the vertices of its block and the out-edges of those
    vertices.  Per iteration every machine aggregates its edges'
    contributions per *target owner* (PGX.D's request buffers act as
    combiners), exchanges the partial vectors, and handles dangling mass
    through a scalar allreduce.  With ``use_ghosts`` the runtime's ghost
    selection keeps hub-vertex contributions local.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if damping < 0 or damping >= 1:
        raise ValueError("damping must be in [0, 1)")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    partition = BlockPartition(num_vertices, runtime.num_machines)
    from .ghost import select_ghosts

    budget = runtime.config.ghost_node_budget if use_ghosts else 0
    ghosts = select_ghosts(src, dst, partition, budget)
    ghost_ids = ghosts.ghost_vertices
    is_ghost = np.zeros(num_vertices, dtype=bool)
    is_ghost[ghost_ids] = True
    out_degree = np.bincount(src, minlength=num_vertices).astype(np.float64)
    owners_of_src = partition.owners(src)

    def program(machine: Machine):
        rank_id, size = machine.rank, machine.size
        start, stop = partition.bounds(rank_id)
        local_n = stop - start
        mine = owners_of_src == rank_id
        my_src = src[mine]
        my_dst = dst[mine]
        dst_owner = partition.owners(my_dst)
        remote_mask = dst_owner != rank_id
        remote_nonghost = remote_mask & ~is_ghost[my_dst]
        ghosted_writes = int(np.sum(remote_mask & is_ghost[my_dst]))
        local_deg = out_degree[start:stop]
        dangling_local = local_deg == 0
        ranks_local = np.full(local_n, 1.0 / num_vertices)
        machine.data.store("pagerank", ranks_local)
        edge_bytes = machine.data.scaled(int(my_src.nbytes + my_dst.nbytes))
        total_saved = 0
        for _ in range(iterations):
            contrib_per_vertex = np.divide(
                ranks_local,
                local_deg,
                out=np.zeros(local_n),
                where=local_deg > 0,
            )
            edge_contrib = contrib_per_vertex[my_src - start]
            # Dense per-target aggregation: the request buffers combine all
            # writes to one destination machine before flushing.
            partial = np.bincount(my_dst, weights=edge_contrib, minlength=num_vertices)
            yield Compute(
                machine.cost.scan_seconds(edge_bytes, machine.threads),
                label="pagerank:scatter",
            )
            chunks = []
            for m in range(size):
                lo, hi = partition.bounds(m)
                chunks.append(partial[lo:hi])
            # Traffic model: one buffered write per remote non-ghost edge,
            # charged against the destination that owns the target vertex;
            # ghosted targets were combined locally and cost nothing here.
            writes_per_dst = np.bincount(
                dst_owner[remote_nonghost], minlength=size
            )
            total_saved += machine.data.scaled(ghosted_writes * REMOTE_WRITE_BYTES)
            from ..simnet.calls import Isend, Recv

            for offset in range(1, size):
                d = (rank_id + offset) % size
                yield Isend(
                    dst=d,
                    nbytes=max(
                        machine.data.scaled(int(writes_per_dst[d]) * REMOTE_WRITE_BYTES),
                        1,
                    ),
                    payload=chunks[d],
                    tag=701,
                )
            received = [chunks[rank_id]]
            for _ in range(size - 1):
                msg = yield Recv(tag=701)
                received.append(msg.payload)
            incoming = np.sum(received, axis=0)
            dangling_mass = float(ranks_local[dangling_local].sum())
            all_dangling = yield from allgather(machine.proc, dangling_mass)
            total_dangling = sum(all_dangling)
            ranks_local = (
                (1.0 - damping) / num_vertices
                + damping * (incoming + total_dangling / num_vertices)
            )
            yield Compute(
                machine.cost.scan_seconds(
                    machine.data.scaled(int(ranks_local.nbytes)), machine.threads
                ),
                label="pagerank:apply",
            )
        machine.data.drop("pagerank")
        return ranks_local, total_saved

    run = runtime.run(program)
    ranks = np.concatenate([r for r, _ in run.results])
    saved = sum(s for _, s in run.results)
    return PageRankResult(ranks, iterations, run.metrics, saved)


@dataclass
class WccResult:
    """Component labels (min vertex id per component) plus round count."""

    labels: np.ndarray
    rounds: int
    metrics: ClusterMetrics

    def num_components(self) -> int:
        return len(np.unique(self.labels))


def distributed_wcc(
    runtime: PgxdRuntime,
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    *,
    max_rounds: int = 1000,
) -> WccResult:
    """Weakly connected components by min-label propagation.

    Each round every machine proposes, for the endpoints of its local
    edges, the minimum label seen across each edge (treating edges as
    undirected); proposals for remote vertices travel to their owners in a
    per-block min-combine exchange.  Terminates when a round changes no
    label anywhere (agreed by allgather).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    partition = BlockPartition(num_vertices, runtime.num_machines)
    owners_of_src = partition.owners(src)

    def program(machine: Machine):
        rank_id, size = machine.rank, machine.size
        start, stop = partition.bounds(rank_id)
        mine = owners_of_src == rank_id
        my_src = src[mine]
        my_dst = dst[mine]
        labels_local = np.arange(start, stop, dtype=np.int64)
        edge_bytes = machine.data.scaled(int(my_src.nbytes + my_dst.nbytes))
        rounds = 0
        while rounds < max_rounds:
            # Everyone needs current labels of remote endpoints: allgather
            # the label blocks (the pull side of label propagation).
            blocks = yield from allgather(machine.proc, labels_local)
            glabels = np.concatenate(blocks)
            edge_min = np.minimum(glabels[my_src], glabels[my_dst])
            proposals = glabels.copy()
            np.minimum.at(proposals, my_src, edge_min)
            np.minimum.at(proposals, my_dst, edge_min)
            yield Compute(
                machine.cost.scan_seconds(edge_bytes, machine.threads),
                label="wcc:propagate",
            )
            # Push proposals to owners, min-combining on arrival.
            chunks = []
            for m in range(size):
                lo, hi = partition.bounds(m)
                chunks.append(proposals[lo:hi])
            received = yield from alltoallv(machine.proc, chunks)
            combined = np.minimum.reduce(received)
            changed = bool(np.any(combined < labels_local))
            labels_local = np.minimum(labels_local, combined)
            rounds += 1
            any_changed = yield from allgather(machine.proc, changed)
            if not any(any_changed):
                break
        return labels_local, rounds

    run = runtime.run(program)
    labels = np.concatenate([lab for lab, _ in run.results])
    rounds = max(r for _, r in run.results)
    return WccResult(labels, rounds, run.metrics)


@dataclass
class BfsResult:
    """Distances from the root (-1 for unreachable), plus traffic."""

    distances: np.ndarray
    levels: int
    metrics: ClusterMetrics


def distributed_bfs(
    runtime: PgxdRuntime,
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    root: int,
) -> BfsResult:
    """Level-synchronous BFS: per level, discovered remote vertices travel
    to their owner machines (the textbook frontier exchange)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if not 0 <= root < num_vertices:
        raise IndexError(f"root {root} outside [0, {num_vertices})")
    partition = BlockPartition(num_vertices, runtime.num_machines)
    owners_of_src = partition.owners(src)

    def program(machine: Machine):
        rank_id, size = machine.rank, machine.size
        start, stop = partition.bounds(rank_id)
        mine = owners_of_src == rank_id
        my_src = src[mine]
        my_dst = dst[mine]
        order = np.argsort(my_src, kind="stable")
        my_src_sorted = my_src[order]
        my_dst_sorted = my_dst[order]
        row_starts = np.searchsorted(my_src_sorted, np.arange(start, stop + 1))
        dist = np.full(stop - start, -1, dtype=np.int64)
        frontier = np.empty(0, dtype=np.int64)  # local vertex ids (global)
        if start <= root < stop:
            dist[root - start] = 0
            frontier = np.array([root], dtype=np.int64)
        level = 0
        while True:
            sizes = yield from allgather(machine.proc, len(frontier))
            if sum(sizes) == 0:
                break
            # Expand: neighbours of the local frontier.
            if len(frontier):
                local_idx = frontier - start
                spans = [
                    my_dst_sorted[row_starts[i] : row_starts[i + 1]] for i in local_idx
                ]
                neighbours = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
                neighbours = np.unique(neighbours)
            else:
                neighbours = np.empty(0, dtype=np.int64)
            yield Compute(
                machine.cost.scan_seconds(
                    machine.data.scaled(int(neighbours.nbytes) + 8), machine.threads
                ),
                label="bfs:expand",
            )
            # Route discoveries to their owners.
            chunks = []
            n_owner = partition.owners(neighbours) if len(neighbours) else np.empty(0, dtype=np.int64)
            for m in range(size):
                chunks.append(neighbours[n_owner == m])
            received = yield from alltoallv(machine.proc, chunks)
            candidates = np.unique(np.concatenate(received)) if received else np.empty(0, dtype=np.int64)
            if len(candidates):
                local = candidates - start
                fresh = local[dist[local] == -1]
                dist[fresh] = level + 1
                frontier = fresh + start
            else:
                frontier = np.empty(0, dtype=np.int64)
            level += 1
        return dist, level

    run = runtime.run(program)
    distances = np.concatenate([d for d, _ in run.results])
    levels = max(lv for _, lv in run.results)
    return BfsResult(distances, levels, run.metrics)
