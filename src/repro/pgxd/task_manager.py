"""Task manager: PGX.D's worker-thread pool model.

Section III: "A list of tasks is created within a task manager at the
beginning of each parallel step. The task manager initializes a set of worker
threads and each of these threads grab a task from the list and executes it."

The simulator runs on virtual time, so the task manager's job here is to
answer: *given this list of task costs, how long does the parallel step take
on t worker threads?*  Tasks are assigned greedily, longest first, to the
least-loaded thread (LPT scheduling — the natural outcome of threads grabbing
tasks from a shared list), and the step time is the makespan plus the
cost-model's region overhead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..simnet.cost import CostModel


@dataclass(frozen=True)
class TaskManager:
    """Virtual-time scheduler for one machine's worker threads."""

    threads: int
    cost: CostModel

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError("threads must be >= 1")

    def parallel_time(self, task_costs: Sequence[float]) -> float:
        """Makespan of running ``task_costs`` (seconds each) on the pool.

        Costs are divided by the pool's parallel efficiency to account for
        contention, then LPT-packed onto threads.
        """
        if any(c < 0 for c in task_costs):
            raise ValueError("task costs must be non-negative")
        costs = [c for c in task_costs if c > 0]
        if not costs:
            return 0.0
        eff = self.cost.efficiency(min(self.threads, len(costs)))
        if len(costs) <= self.threads:
            return max(costs) / eff + self.cost.task_region_overhead
        loads = [0.0] * self.threads
        heapq.heapify(loads)
        for c in sorted(costs, reverse=True):
            lightest = heapq.heappop(loads)
            heapq.heappush(loads, lightest + c)
        return max(loads) / eff + self.cost.task_region_overhead

    def chunked_time(self, total_work: float, unit_cost: float, chunks: int) -> float:
        """Time for ``total_work`` units split into ``chunks`` equal tasks
        of ``unit_cost`` seconds per unit."""
        if chunks < 1:
            raise ValueError("chunks must be >= 1")
        if total_work < 0 or unit_cost < 0:
            raise ValueError("work and cost must be non-negative")
        per_chunk = total_work / chunks * unit_cost
        return self.parallel_time([per_chunk] * chunks)
