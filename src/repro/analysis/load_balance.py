"""Load-balance metrics over per-processor key counts.

Centralizes the statistics the paper reports: per-processor ratios
(Table II), min/max spread (Figure 10), and the max-over-mean imbalance
factor used throughout the evaluation and the ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BalanceReport:
    """Summary statistics of one distribution of keys over processors."""

    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 1:
            raise ValueError("counts must be one-dimensional")
        if counts.size == 0:
            raise ValueError("counts must not be empty")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")

    @property
    def total(self) -> int:
        return int(np.sum(self.counts))

    def ratios(self) -> np.ndarray:
        """Fraction of all keys per processor (Table II's columns)."""
        if self.total == 0:
            return np.zeros(len(self.counts))
        return np.asarray(self.counts) / self.total

    def imbalance(self) -> float:
        """Max over mean; 1.0 is perfect balance."""
        counts = np.asarray(self.counts, dtype=np.float64)
        if counts.sum() == 0:
            return 1.0
        return float(counts.max() / counts.mean())

    def spread(self) -> int:
        """Max minus min processor load (Figure 10's bars)."""
        counts = np.asarray(self.counts)
        return int(counts.max() - counts.min())

    def relative_spread(self) -> float:
        """Spread normalized by the mean load."""
        counts = np.asarray(self.counts, dtype=np.float64)
        mean = counts.mean()
        return float(self.spread() / mean) if mean else 0.0

    def coefficient_of_variation(self) -> float:
        counts = np.asarray(self.counts, dtype=np.float64)
        mean = counts.mean()
        return float(counts.std() / mean) if mean else 0.0

    def largest_equal_block(self, tol: float = 5e-4) -> int:
        """Length of the longest run of (sorted) ratios equal within ``tol``
        — how many processors share a tied-value division exactly
        (Table II's 9.998% block)."""
        r = np.sort(self.ratios())
        best = run = 1
        for a, b in zip(r, r[1:]):
            run = run + 1 if abs(b - a) <= tol else 1
            best = max(best, run)
        return best


def compare_balance(
    counts_by_method: dict[str, np.ndarray],
) -> dict[str, dict[str, float]]:
    """Balance metrics for several methods over the same dataset."""
    out: dict[str, dict[str, float]] = {}
    for name, counts in counts_by_method.items():
        report = BalanceReport(np.asarray(counts))
        out[name] = {
            "imbalance": report.imbalance(),
            "spread": float(report.spread()),
            "cv": report.coefficient_of_variation(),
        }
    return out
