"""Analysis utilities: load-balance metrics, table rendering, calibration."""

from .calibration import CalibrationCheck, run_checks, summarize, thread_efficiency_profile
from .determinism import capture_sort_fingerprint
from .load_balance import BalanceReport, compare_balance
from .regression import ComparisonReport, Drift, compare
from .tables import range_rows, ratio_row, to_markdown

__all__ = [
    "BalanceReport",
    "CalibrationCheck",
    "ComparisonReport",
    "Drift",
    "capture_sort_fingerprint",
    "compare",
    "compare_balance",
    "range_rows",
    "ratio_row",
    "run_checks",
    "summarize",
    "thread_efficiency_profile",
    "to_markdown",
]
