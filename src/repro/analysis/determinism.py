"""Bit-exact fingerprinting of simulation runs.

The engine's contract is full determinism: the same programs, inputs, and
configuration must produce the same virtual times, metrics, and outputs on
every run — and across engine refactors.  This module condenses one run of
the paper's distributed sort into a JSON-able *fingerprint* whose floats are
recorded as ``float.hex()`` strings, so equality means bit-identity rather
than "approximately equal".

The committed golden fingerprint (``tests/golden/``) was captured from the
original interpreter-style event loop; the golden determinism test replays
the same run on the current engine and asserts an identical fingerprint,
which is what licenses performance work on the event loop's hot paths.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from ..core.sorter import SortOptions, sample_sort_program
from ..pgxd.runtime import Machine, PgxdRuntime
from ..simnet.engine import ProcessHandle, Simulator
from ..simnet.metrics import ProcessMetrics


def _hex(x: float) -> str:
    return float(x).hex()


def _digest(arrays: list[np.ndarray]) -> str:
    h = hashlib.sha256()
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.hexdigest()


def _metrics_fingerprint(m: ProcessMetrics) -> dict[str, Any]:
    return {
        "rank": m.rank,
        "phase_seconds": {k: _hex(v) for k, v in sorted(m.phase_seconds.items())},
        "other_seconds": _hex(m.other_seconds),
        "recv_wait_seconds": _hex(m.recv_wait_seconds),
        "barrier_wait_seconds": _hex(m.barrier_wait_seconds),
        "send_seconds": _hex(m.send_seconds),
        "bytes_sent": m.bytes_sent,
        "bytes_received": m.bytes_received,
        "messages_sent": m.messages_sent,
        "messages_received": m.messages_received,
        "peak_resident": m.memory.peak_resident,
        "peak_temporary": m.memory.peak_temporary,
        "peak_total": m.memory.peak_total,
        "finished_at": _hex(m.finished_at if m.finished_at is not None else -1.0),
    }


def capture_sort_fingerprint(
    num_ranks: int = 16,
    n_keys: int = 60_000,
    seed: int = 20260805,
    *,
    sanitizer: Any = None,
) -> dict[str, Any]:
    """Run a fixed-seed distributed sort with tracing; return its fingerprint.

    Every field is either an integer count or a ``float.hex()`` string, so a
    fingerprint compares bit-exactly across engine implementations.

    ``sanitizer`` attaches a :class:`~repro.simnet.sanitizer.SimSan` to the
    run.  The fingerprint shape is unchanged — SimSan must be invisible to
    simulated behavior, which is exactly what comparing a sanitized capture
    against the committed golden fingerprint proves.
    """
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 40, n_keys).astype(np.int64)
    bounds = [n_keys * i // num_ranks for i in range(num_ranks + 1)]
    blocks = [data[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
    options = SortOptions()
    runtime = PgxdRuntime(num_ranks, trace=True)
    sim = Simulator(num_ranks, runtime.network, trace=True, sanitizer=sanitizer)

    def bootstrap(proc: ProcessHandle):
        machine = Machine(proc, runtime.config, runtime.cost_for_rank(proc.rank))
        return (yield from sample_sort_program(machine, blocks[proc.rank], options))

    sim.add_program(bootstrap)
    metrics = sim.run()
    outputs = sim.results()

    trace_per_rank = [0] * num_ranks
    for _, rank, _ in sim.trace_log:
        trace_per_rank[rank] += 1

    keys = [out.keys for out in outputs]
    prov = []
    for out in outputs:
        prov.append(out.provenance.origin_proc)
        prov.append(out.provenance.origin_index)
    return {
        "workload": {"num_ranks": num_ranks, "n_keys": n_keys, "seed": seed},
        "makespan": _hex(metrics.makespan),
        "remote_bytes": metrics.remote_bytes,
        "local_bytes": metrics.local_bytes,
        "messages": metrics.messages,
        "trace_events_total": len(sim.trace_log),
        "trace_events_per_rank": trace_per_rank,
        "step_seconds": [
            {k: _hex(v) for k, v in sorted(out.step_seconds.items())}
            for out in outputs
        ],
        "processes": [_metrics_fingerprint(p) for p in metrics.processes],
        "output_keys_sha256": _digest(keys),
        "output_provenance_sha256": _digest(prov),
        "output_sizes": [int(len(k)) for k in keys],
    }


if __name__ == "__main__":  # pragma: no cover - golden re-capture CLI
    import json
    import sys

    json.dump(capture_sort_fingerprint(), sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")
