"""Paper-style table rendering helpers.

Thin formatting layer shared by the experiment CLI, the benchmark harness
and ad-hoc analysis: ratio rows (Table II), range rows (Table III), and
markdown output for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..experiments.common import format_table


def ratio_row(label: str, ratios: np.ndarray) -> list[str]:
    """One Table-II row: percentage strings per processor."""
    return [label] + [f"{r * 100:.3f}%" for r in np.asarray(ratios)]


def range_rows(
    ranges_by_p: dict[int, list[tuple[float, float] | None]]
) -> tuple[list[str], list[list[str]]]:
    """Table-III layout: one row per processor id, one column per p."""
    counts = sorted(ranges_by_p)
    headers = ["proc"] + [f"p={p}" for p in counts]
    rows: list[list[str]] = []
    for i in range(max(counts)):
        row = [f"proc{i}"]
        for p in counts:
            spans = ranges_by_p[p]
            if i < p and spans[i] is not None:
                lo, hi = spans[i]
                row.append(f"{lo:.2f} - {hi:.2f}")
            else:
                row.append("")
        rows.append(row)
    return headers, rows


def to_markdown(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = [
        "| " + " | ".join(_fmt(c) for c in row) + " |"
        for row in rows
    ]
    return "\n".join([head, sep, *body])


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


__all__ = ["format_table", "range_rows", "ratio_row", "to_markdown"]
