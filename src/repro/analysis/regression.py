"""Regression comparison of experiment results.

``repro-experiments --json > baseline.json`` captures a full structured
snapshot of every experiment; this module diffs two such snapshots so CI
(or a developer after a cost-model change) can see exactly which numbers
moved and by how much:

    python -m repro.analysis.regression baseline.json current.json --tolerance 0.1

Numeric leaves are compared with relative tolerance; structural changes
(new/missing experiments or fields) are always reported.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass


@dataclass(frozen=True)
class Drift:
    """One numeric leaf that moved beyond tolerance."""

    path: str
    baseline: float
    current: float

    @property
    def relative(self) -> float:
        denom = max(abs(self.baseline), 1e-300)
        return abs(self.current - self.baseline) / denom

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.path}: {self.baseline:.6g} -> {self.current:.6g} ({self.relative:+.1%})"


@dataclass
class ComparisonReport:
    """Outcome of comparing two result snapshots."""

    drifts: list[Drift]
    missing: list[str]
    added: list[str]
    compared_leaves: int

    @property
    def ok(self) -> bool:
        return not self.drifts and not self.missing

    def summary(self) -> str:
        lines = [
            f"compared {self.compared_leaves} numeric values: "
            f"{len(self.drifts)} drifted, {len(self.missing)} missing, "
            f"{len(self.added)} added"
        ]
        lines.extend(f"  DRIFT  {d}" for d in self.drifts)
        lines.extend(f"  MISSING {path}" for path in self.missing)
        lines.extend(f"  ADDED   {path}" for path in self.added)
        return "\n".join(lines)


def compare(
    baseline,
    current,
    *,
    tolerance: float = 0.1,
    path: str = "",
) -> ComparisonReport:
    """Recursively diff two JSON-like structures.

    Numbers within relative ``tolerance`` match; strings/bools must be
    equal exactly; dict keys and list lengths are structural.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    report = ComparisonReport([], [], [], 0)
    _walk(baseline, current, tolerance, path, report)
    return report


def _walk(base, cur, tol: float, path: str, report: ComparisonReport) -> None:
    if isinstance(base, dict) and isinstance(cur, dict):
        for key in base:
            sub = f"{path}.{key}" if path else str(key)
            if key not in cur:
                report.missing.append(sub)
            else:
                _walk(base[key], cur[key], tol, sub, report)
        for key in cur:
            if key not in base:
                report.added.append(f"{path}.{key}" if path else str(key))
        return
    if isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            report.missing.append(f"{path}[len {len(base)} != {len(cur)}]")
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            _walk(b, c, tol, f"{path}[{i}]", report)
        return
    if isinstance(base, bool) or isinstance(cur, bool):
        report.compared_leaves += 1
        if base != cur:
            report.drifts.append(Drift(path, float(base), float(cur)))
        return
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        report.compared_leaves += 1
        denom = max(abs(base), 1e-300)
        if abs(cur - base) / denom > tol and abs(cur - base) > 1e-12:
            report.drifts.append(Drift(path, float(base), float(cur)))
        return
    if base != cur:
        report.missing.append(f"{path}[{base!r} != {cur!r}]")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.regression",
        description="Diff two `repro-experiments --json` snapshots.",
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.1)
    args = parser.parse_args(argv)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)
    report = compare(baseline, current, tolerance=args.tolerance)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
