"""Cost-model calibration checks.

The CostModel defaults were tuned so the published *shape* holds (DESIGN.md
§5).  This module makes the calibration auditable: each check runs a small
probe simulation and reports whether a paper-anchored invariant holds, so a
change to the constants that silently breaks the reproduction shows up in
tests and in ``repro-experiments``-adjacent tooling rather than in a figure
eyeball.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.spark.engine import spark_sort_by_key
from ..core.api import DistributedSorter
from ..simnet.cost import CostModel
from ..workloads import uniform


@dataclass(frozen=True)
class CalibrationCheck:
    """One named invariant with its measured value and allowed band."""

    name: str
    measured: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high


def run_checks(
    *,
    real_keys: int = 1 << 15,
    modeled_keys: int = 1_000_000_000,
    seed: int = 0,
) -> list[CalibrationCheck]:
    """Probe the calibrated invariants; returns one check per claim."""
    data = uniform(real_keys, seed=seed, value_range=1 << 20)
    scale = modeled_keys / real_keys
    checks: list[CalibrationCheck] = []

    # Paper headline: Spark/PGX.D in [~1.5, ~3.5] across the sweep.
    ratios = []
    times = {}
    for p in (8, 52):
        pg = DistributedSorter(num_processors=p, data_scale=scale).sort(data)
        sp = spark_sort_by_key(data, num_executors=p, data_scale=scale)
        times[p] = pg
        ratios.append(sp.elapsed_seconds / pg.elapsed_seconds)
    checks.append(CalibrationCheck("spark_ratio_min", min(ratios), 1.4, 3.6))
    checks.append(CalibrationCheck("spark_ratio_max", max(ratios), 1.4, 3.6))

    # Figure 6: PGX.D strong-scaling speedup 8 -> 52 processors.
    speedup = times[8].elapsed_seconds / times[52].elapsed_seconds
    checks.append(CalibrationCheck("pgxd_speedup_8_to_52", speedup, 3.0, 6.6))

    # Figure 7 ordering: local sort dominates; exchange below 40% of it.
    steps = times[8].step_breakdown()
    sort_s = steps["1-local-sort"]
    checks.append(
        CalibrationCheck(
            "exchange_over_sort", steps["5-exchange"] / sort_s, 0.0, 0.4
        )
    )
    checks.append(
        CalibrationCheck("merge_over_sort", steps["6-merge"] / sort_s, 0.05, 0.8)
    )
    return checks


def thread_efficiency_profile(cost: CostModel | None = None) -> dict[int, float]:
    """Efficiency at the thread counts the paper's machines expose."""
    cost = cost or CostModel()
    return {t: cost.efficiency(t) for t in (1, 2, 4, 8, 16, 32)}


def summarize(checks: list[CalibrationCheck]) -> str:
    lines = ["calibration checks:"]
    for c in checks:
        flag = "ok " if c.ok else "OUT"
        lines.append(
            f"  [{flag}] {c.name:<24s} {c.measured:8.3f}  (allowed {c.low} .. {c.high})"
        )
    return "\n".join(lines)
