"""Typed telemetry events recorded by :class:`repro.obs.tracer.Tracer`.

These replace the free-text ``(time, rank, str)`` trace entries: every field
the analysis layers used to regex back out of strings (message sizes, span
kinds, phase labels) is a first-class attribute, and flows carry the ids the
string log never had, so sends pair to deliveries without heuristics.

All times are virtual seconds from the simulator clock; events are value
records produced once and never mutated after the run completes (a
:class:`FlowEvent` is created at injection with its delivery time already
resolved by the network model).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Span kinds recorded by the engine (``phase`` spans come from Mark calls).
SPAN_KINDS = ("compute", "send", "recv-wait", "barrier-wait", "phase", "instant")


@dataclass(slots=True)
class SpanEvent:
    """One interval of activity on one rank's timeline."""

    rank: int
    start: float
    #: Duration in virtual seconds; zero-length spans are legal and kept.
    duration: float
    kind: str
    label: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(slots=True)
class FlowEvent:
    """One message, from injection at the sender to mailbox delivery.

    ``id`` is unique within a tracer, which is what lets the Perfetto
    exporter draw an arrow from the send slice on the source track to the
    delivery point on the destination track.
    """

    id: int
    src: int
    dst: int
    tag: int
    #: Modeled wire bytes (post ``data_scale``), as charged to the network.
    nbytes: int
    inject_t: float
    deliver_t: float
    #: Byte offset of the write in the destination's region — measured shm
    #: flows only (process backend); -1 on simnet's modeled messages.
    offset: int = -1

    @property
    def remote(self) -> bool:
        """True when the message crossed the wire (not a self-send)."""
        return self.src != self.dst

    @property
    def transit(self) -> float:
        return self.deliver_t - self.inject_t


@dataclass(slots=True)
class CounterSample:
    """One sample of a named numeric series on one rank."""

    rank: int
    time: float
    name: str
    value: float


@dataclass(slots=True)
class FaultEvent:
    """One injected (or protocol-observed) fault occurrence.

    ``kind`` is one of the engine's injection kinds (``drop``, ``dup``,
    ``delay``, ``crash``, ``dead-letter``) or a protocol-layer observation
    (``retry``, ``peer-dead``).  ``src``/``dst`` are -1 when the fault is
    not message-scoped (e.g. a crash).
    """

    rank: int
    time: float
    kind: str
    src: int = -1
    dst: int = -1
    detail: str = ""
