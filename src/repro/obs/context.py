"""Ambient capture: attach a tracer to every simulator built in a scope.

Experiments construct their simulators many layers down
(``DistributedSorter -> PgxdRuntime -> Simulator``), and threading a tracer
argument through every call site would touch all nineteen experiment
modules.  Instead the engine asks this module, at construction time only,
whether a capture is active::

    with capture() as cap:
        result = distributed_sort(data, num_processors=16)
    tracer = cap.sessions[-1].tracer        # one session per Simulator

Each simulator gets its *own* tracer (a :class:`Session` also keeps the
simulator so metrics can be read after the run), because every run restarts
the virtual clock at zero — per-session tracers keep exported tracks from
overlapping.  The check happens once per ``Simulator()`` construction, never
inside the run loop, so the no-capture cost is one function call per
simulation.  Captures nest: the innermost active capture wins.

This module deliberately imports nothing from :mod:`repro.simnet`, which is
what lets the engine import it without a cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from .tracer import Tracer


@dataclass
class Session:
    """One simulator observed by a capture."""

    tracer: Tracer
    #: The Simulator instance (untyped to avoid importing the engine).
    simulator: Any


class Capture:
    """Collects one :class:`Session` per simulator built while active."""

    def __init__(self, name: str = "capture") -> None:
        self.name = name
        self.sessions: list[Session] = []

    def new_session(self, simulator: Any) -> Tracer:
        """Called by the engine when a simulator is built under this capture."""
        tracer = Tracer(name=f"{self.name}#{len(self.sessions)}")
        self.sessions.append(Session(tracer, simulator))
        return tracer

    def adopt_session(self, tracer: Tracer, runner: Any) -> Tracer:
        """Register an externally assembled tracer (the process backend).

        The real-parallel backend cannot hand a tracer to a simulator — it
        merges per-worker payloads *after* the run — so it adopts the
        finished tracer here instead, renamed to this capture's sequence so
        sim and real sessions are addressed identically.  ``runner`` plays
        the ``simulator`` role: anything exposing ``metrics()`` (and
        optionally ``step_seconds``) works for downstream report writers.
        """
        tracer.name = f"{self.name}#{len(self.sessions)}"
        self.sessions.append(Session(tracer, runner))
        return tracer

    @property
    def tracers(self) -> list[Tracer]:
        return [s.tracer for s in self.sessions]


#: Stack of active captures (the simulator is single-threaded; plain list).
_ACTIVE: list[Capture] = []


def active_capture() -> Capture | None:
    """The innermost active capture, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def capture(name: str = "capture") -> Iterator[Capture]:
    """Attach a fresh tracer to every simulator built inside the block."""
    cap = Capture(name)
    _ACTIVE.append(cap)
    try:
        yield cap
    finally:
        _ACTIVE.remove(cap)
