"""Structured tracing & telemetry for the simulated cluster.

The string trace log (``Simulator(trace=True)``) predates this package and
survives as a deprecated shim; everything new records *typed* events through
a :class:`~repro.obs.tracer.Tracer`:

* :class:`~repro.obs.events.SpanEvent` — one interval of rank activity
  (compute, send occupancy, recv/barrier wait, or a labelled phase);
* :class:`~repro.obs.events.FlowEvent` — one message with a cluster-unique
  id, src/dst ranks, tag, modeled bytes, and inject/deliver times, pairing
  every send to its delivery across ranks;
* :class:`~repro.obs.events.CounterSample` — a sampled numeric series
  (memory pools, NIC queueing, bytes in flight).

The engine records these only when a tracer is attached — the disabled
path is a single ``is not None`` test per operation, guarded exactly like
the pre-existing trace flag, so production runs (and the golden
determinism fingerprint) are untouched.

On top of the raw events:

* :mod:`repro.obs.perfetto` exports Chrome-trace-event JSON (one track per
  rank, flow arrows for every message) loadable in https://ui.perfetto.dev;
* :mod:`repro.obs.report` condenses a run into a :class:`RunReport`
  artifact (per-step wall/compute/wait/bytes and peaks per rank);
* :mod:`repro.obs.context` provides :func:`capture`, a context manager
  that attaches a fresh tracer to every simulator built inside it — how
  the experiments CLI implements ``--trace-out`` / ``--report-out``.
"""

from .context import Capture, Session, active_capture, capture
from .events import CounterSample, FlowEvent, SpanEvent
from .perfetto import chrome_trace_events, export_chrome_trace
from .report import RankReport, RunReport, StepStats, capture_run_report
from .tracer import Tracer

__all__ = [
    "Capture",
    "CounterSample",
    "FlowEvent",
    "RankReport",
    "RunReport",
    "Session",
    "SpanEvent",
    "StepStats",
    "Tracer",
    "active_capture",
    "capture",
    "capture_run_report",
    "chrome_trace_events",
    "export_chrome_trace",
]
