"""The event recorder the engine's run loop calls when tracing is enabled.

A :class:`Tracer` is an append-only store of typed events plus the handful
of recording methods the hot paths invoke.  Design constraints:

* **Disabled cost is one pointer test.**  The engine binds the tracer to a
  local once per run and guards every recording site with
  ``if tracer is not None`` — identical discipline to the pre-existing
  string-trace flag, so the tracer-off path stays on the PR-1 fast path
  (enforced by the <2% gate in ``benchmarks/perf/check_regression.py``).
* **Enabled cost is one method call + one dataclass append** per event; no
  string formatting happens at record time (the exporter renders labels).
* **No virtual-time side effects.**  Recording never touches the clock,
  the event queue, or metrics, so a traced run is bit-identical to an
  untraced one (locked by the golden determinism test).

A tracer may observe several :class:`~repro.simnet.engine.Simulator` runs
(each starts its clock at zero); use one tracer per run — or the
:func:`repro.obs.context.capture` context, which does so automatically —
when exporting, so tracks don't overlap.
"""

from __future__ import annotations

from .events import CounterSample, FaultEvent, FlowEvent, SpanEvent


class Tracer:
    """Typed-event recorder for one simulated run."""

    __slots__ = (
        "name",
        "spans",
        "flows",
        "counters",
        "faults",
        "num_ranks",
        "makespan",
        "_open_phases",
        "_next_flow_id",
        "_inflight_bytes",
    )

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.spans: list[SpanEvent] = []
        self.flows: list[FlowEvent] = []
        self.counters: list[CounterSample] = []
        #: Injected-fault occurrences (empty on fault-free runs).
        self.faults: list[FaultEvent] = []
        #: Highest rank count of any simulator this tracer was attached to.
        self.num_ranks = 0
        #: Final virtual time of the last observed run (set by the engine).
        self.makespan = 0.0
        #: Per-rank stack of open ``Mark(begin)`` phases: rank -> [(label, t)].
        self._open_phases: dict[int, list[tuple[str, float]]] = {}
        self._next_flow_id = 0
        self._inflight_bytes = 0

    # ------------------------------------------------------ recording API

    def span(self, rank: int, start: float, duration: float, kind: str, label: str = "") -> None:
        """Record one activity interval (zero durations are kept)."""
        self.spans.append(SpanEvent(rank, start, duration, kind, label))

    def mark(self, rank: int, t: float, label: str, event: str) -> None:
        """Handle a ``Mark`` call: open/close a phase span or drop an instant.

        ``end`` closes the innermost open phase with a matching label (or,
        if none matches, the innermost phase — tolerant of reordered ends so
        a program bug degrades the trace instead of crashing the run).
        """
        if event == "begin":
            self._open_phases.setdefault(rank, []).append((label, t))
            return
        if event == "instant":
            self.spans.append(SpanEvent(rank, t, 0.0, "instant", label))
            return
        stack = self._open_phases.get(rank)
        if not stack:
            self.spans.append(SpanEvent(rank, t, 0.0, "phase", label))
            return
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][0] == label:
                opened_label, start = stack.pop(i)
                break
        else:
            opened_label, start = stack.pop()
        self.spans.append(SpanEvent(rank, start, t - start, "phase", opened_label))

    def flow(self, src: int, dst: int, tag: int, nbytes: int, inject_t: float, deliver_t: float) -> FlowEvent:
        """Record one message; returns the event (its id pairs send/recv)."""
        fid = self._next_flow_id
        self._next_flow_id = fid + 1
        event = FlowEvent(fid, src, dst, tag, nbytes, inject_t, deliver_t)
        self.flows.append(event)
        self._inflight_bytes += nbytes
        self.counters.append(
            CounterSample(src, inject_t, "net.bytes_in_flight", float(self._inflight_bytes))
        )
        return event

    def shm_flow(
        self,
        src: int,
        dst: int,
        nbytes: int,
        inject_t: float,
        deliver_t: float,
        *,
        offset: int = -1,
    ) -> FlowEvent:
        """Record one measured shared-memory all-to-all write (process backend).

        Unlike :meth:`flow` this leaves the ``net.bytes_in_flight`` series
        untouched — a shm write is never "in flight"; the interval *is* the
        transfer.  ``tag`` doubles as the destination rank and ``offset``
        carries the write's byte position in the receiver's region.
        """
        fid = self._next_flow_id
        self._next_flow_id = fid + 1
        event = FlowEvent(fid, src, dst, dst, nbytes, inject_t, deliver_t, offset)
        self.flows.append(event)
        return event

    def delivered(self, rank: int, t: float, nbytes: int) -> None:
        """Mailbox delivery: retire ``nbytes`` from the in-flight series."""
        self._inflight_bytes -= nbytes
        self.counters.append(
            CounterSample(rank, t, "net.bytes_in_flight", float(self._inflight_bytes))
        )

    def counter(self, rank: int, t: float, name: str, value: float) -> None:
        """Record one sample of an arbitrary named series."""
        self.counters.append(CounterSample(rank, t, name, value))

    def fault(
        self,
        rank: int,
        t: float,
        kind: str,
        *,
        src: int = -1,
        dst: int = -1,
        detail: str = "",
    ) -> None:
        """Record one fault occurrence (engine injection or protocol event).

        Also drops an instant span on the rank's track so existing
        exporters (Perfetto) render fault markers with no format changes.
        """
        self.faults.append(FaultEvent(rank, t, kind, src, dst, detail))
        label = f"fault:{kind}" + (f" {detail}" if detail else "")
        self.spans.append(SpanEvent(rank, t, 0.0, "instant", label))

    def faults_for(self, rank: int | None = None, kind: str | None = None) -> list[FaultEvent]:
        """Query fault events by rank and/or kind."""
        return [
            f
            for f in self.faults
            if (rank is None or f.rank == rank) and (kind is None or f.kind == kind)
        ]

    def finish(self, makespan: float) -> None:
        """Close any phases left open at run end and record the makespan."""
        self.makespan = max(self.makespan, makespan)
        for rank, stack in self._open_phases.items():
            while stack:
                label, start = stack.pop()
                self.spans.append(SpanEvent(rank, start, makespan - start, "phase", label))

    # --------------------------------------------------------- query API

    def ranks(self) -> list[int]:
        seen = {s.rank for s in self.spans}
        seen.update(f.src for f in self.flows)
        seen.update(f.dst for f in self.flows)
        return sorted(seen)

    def spans_for(self, rank: int, kind: str | None = None) -> list[SpanEvent]:
        return [
            s for s in self.spans if s.rank == rank and (kind is None or s.kind == kind)
        ]

    def phase_spans(self, rank: int | None = None) -> list[SpanEvent]:
        return [
            s
            for s in self.spans
            if s.kind == "phase" and (rank is None or s.rank == rank)
        ]

    def remote_flows(self) -> list[FlowEvent]:
        return [f for f in self.flows if f.remote]

    def flow_bytes(self, *, remote_only: bool = False) -> int:
        return sum(f.nbytes for f in self.flows if f.remote or not remote_only)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer({self.name!r}, spans={len(self.spans)}, "
            f"flows={len(self.flows)}, counters={len(self.counters)})"
        )
