"""Chrome-trace-event / Perfetto JSON export of structured traces.

Produces the JSON-object flavour of the Trace Event Format understood by
https://ui.perfetto.dev and ``chrome://tracing``:

* each simulator run is one *process* (``pid``), each rank one *thread*
  (``tid``), named via ``M`` metadata events;
* spans become complete slices (``ph: "X"``, microsecond ``ts``/``dur``);
* every message becomes a flow pair — ``ph: "s"`` on the source track at
  injection and ``ph: "f"`` (binding point ``e``) on the destination track
  at delivery, sharing the flow's id — which Perfetto renders as an arrow;
* counter series become ``ph: "C"`` events.

Virtual seconds are exported as microseconds (the format's native unit);
the flow ``args`` carry src/dst/tag/bytes so exports are machine-checkable
(see ``tests/obs/test_perfetto.py``) as well as viewable.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from .tracer import Tracer

#: Span kinds drawn as slices (phases give the step banding, computes the
#: work, waits the gaps; instants are drawn as zero-width slices).
_US = 1e6


def _slice_name(kind: str, label: str) -> str:
    return label if label else kind


def chrome_trace_events(tracer: Tracer, pid: int = 0) -> list[dict[str, Any]]:
    """All trace events for one tracer, as JSON-ready dicts."""
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": tracer.name},
        }
    ]
    for rank in range(tracer.num_ranks or (max(tracer.ranks(), default=-1) + 1)):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": span.rank,
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "name": _slice_name(span.kind, span.label),
                "cat": span.kind,
            }
        )
    for flow in tracer.flows:
        args = {
            "src": flow.src,
            "dst": flow.dst,
            "tag": flow.tag,
            "nbytes": flow.nbytes,
            "remote": flow.remote,
        }
        if flow.offset >= 0:  # measured shm write position (process backend)
            args["offset"] = flow.offset
        name = f"msg tag={flow.tag}"
        events.append(
            {
                "ph": "s",
                "pid": pid,
                "tid": flow.src,
                "ts": flow.inject_t * _US,
                "id": flow.id,
                "name": name,
                "cat": "flow",
                "args": args,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "pid": pid,
                "tid": flow.dst,
                "ts": flow.deliver_t * _US,
                "id": flow.id,
                "name": name,
                "cat": "flow",
            }
        )
    for sample in tracer.counters:
        events.append(
            {
                "ph": "C",
                "pid": pid,
                "tid": sample.rank,
                "ts": sample.time * _US,
                "name": f"{sample.name} r{sample.rank}",
                "args": {"value": sample.value},
            }
        )
    return events


def export_chrome_trace(
    tracers: Tracer | Iterable[Tracer], path: str | None = None
) -> dict[str, Any]:
    """Assemble (and optionally write) one trace document.

    Several tracers export as separate process groups — passing a capture's
    ``tracers`` list shows every simulation of a sweep side by side.
    Returns the document; writes pretty-printed JSON when ``path`` is given.
    """
    if isinstance(tracers, Tracer):
        tracers = [tracers]
    events: list[dict[str, Any]] = []
    sessions = []
    for pid, tracer in enumerate(tracers):
        events.extend(chrome_trace_events(tracer, pid=pid))
        sessions.append(
            {
                "pid": pid,
                "name": tracer.name,
                "num_ranks": tracer.num_ranks,
                "makespan_seconds": tracer.makespan,
                "spans": len(tracer.spans),
                "flows": len(tracer.flows),
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.chrome-trace/1",
            "time_unit": "virtual microseconds",
            "sessions": sessions,
        },
    }
    if path is not None:
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return doc
