"""RunReport: the per-run observability artifact.

A :class:`RunReport` condenses one simulated run into the quantities the
paper's whole evaluation is made of — per-step wall/compute/wait seconds,
bytes and message counts, and peak memory, all per rank, plus the
cluster-level totals — and serializes to JSON so every experiment can emit
a comparable artifact (``repro-experiments ... --report-out report.json``).

Wall times per step come from the sorter's measured step boundaries when
available (``SortResult.step_seconds``), otherwise from the tracer's phase
spans (``Mark`` begin/end pairs).  Compute per step comes from the labelled
compute metrics; ``wait`` is the non-compute remainder of the step (recv /
barrier blocking plus send occupancy).  Per-step bytes and message counts
are attributed by intersecting each flow's injection time with the source
rank's phase spans, which needs a tracer; without one they are zero.

Reports are deterministic for a fixed-seed run — the committed golden
snapshot ``tests/golden/run_report_p16.json`` locks the p=16 report the
same way the engine fingerprint locks virtual times.

Modeled vs measured fields
--------------------------

The same schema serves both backends, but the numbers mean different
things.  Under ``simnet`` every quantity is **modeled**: times are virtual
seconds from the cost model, bytes are post-``data_scale`` wire charges,
and peak memory is the ``MemoryTracker``'s pool accounting.  Under the
process backend every time is **measured** wall clock: step walls are the
worker's own ``perf_counter`` boundaries, waits are clocked inside the
blocking collectives, compute is their difference, flow bytes are the
actual shm write sizes, and ``peak_resident_bytes`` is the worker
process's real ``ru_maxrss`` — only ``peak_temporary_bytes`` (no real
counterpart; 0) and the modeled network series stay sim-only.  Real
reports are therefore machine-dependent and never golden-snapshotted;
the schema-equality test pins that both backends emit identical keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..simnet.metrics import ClusterMetrics
from .tracer import Tracer

SCHEMA = "repro.run-report/1"


@dataclass
class StepStats:
    """One step of the pipeline on one rank."""

    #: Elapsed virtual seconds between the step's begin and end boundaries.
    wall: float = 0.0
    #: Labelled compute seconds charged to the step.
    compute: float = 0.0
    #: Non-compute remainder of the step (blocking waits + send occupancy).
    wait: float = 0.0
    #: Modeled bytes this rank injected during the step (tracer required).
    bytes_sent: int = 0
    #: Messages this rank injected during the step (tracer required).
    messages_sent: int = 0


@dataclass
class RankReport:
    """Per-rank snapshot of one run."""

    rank: int
    steps: dict[str, StepStats] = field(default_factory=dict)
    send_seconds: float = 0.0
    recv_wait_seconds: float = 0.0
    barrier_wait_seconds: float = 0.0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    peak_resident_bytes: int = 0
    peak_temporary_bytes: int = 0
    #: Fault-injection accounting (retries/timeouts/drops/dups/crashed).
    #: None on fault-free runs — the key is then absent from the JSON, so
    #: golden report snapshots predating fault injection stay bit-identical.
    faults: dict[str, Any] | None = None


@dataclass
class RunReport:
    """Cluster-wide run summary with per-rank, per-step detail."""

    num_ranks: int
    makespan_seconds: float
    remote_bytes: int
    local_bytes: int
    messages: int
    communication_seconds: float
    communication_fraction: float
    ranks: list[RankReport] = field(default_factory=list)
    schema: str = SCHEMA

    # ------------------------------------------------------------ queries

    def step_breakdown(self) -> dict[str, float]:
        """Max-over-ranks wall seconds per step (Figure-7 shape)."""
        out: dict[str, float] = {}
        for rr in self.ranks:
            for label, stats in rr.steps.items():
                out[label] = max(out.get(label, 0.0), stats.wall)
        return out

    # -------------------------------------------------------- assembly

    @classmethod
    def from_metrics(
        cls,
        metrics: ClusterMetrics,
        tracer: Tracer | None = None,
        step_seconds: list[dict[str, float]] | None = None,
    ) -> "RunReport":
        """Build a report from cluster metrics (+ optional tracer detail).

        ``step_seconds`` — one ``{label: wall}`` dict per rank, as produced
        by the sort program — takes precedence for step walls; otherwise
        walls come from the tracer's phase spans; otherwise each step's
        wall degrades to its compute time.
        """
        ranks: list[RankReport] = []
        for proc in metrics.processes:
            walls: dict[str, float] = {}
            if step_seconds is not None:
                walls = dict(step_seconds[proc.rank])
            elif tracer is not None:
                for span in tracer.phase_spans(proc.rank):
                    walls[span.label] = walls.get(span.label, 0.0) + span.duration
            labels = list(walls) if walls else sorted(proc.phase_seconds)
            steps: dict[str, StepStats] = {}
            for label in labels:
                compute = proc.phase_seconds.get(label, 0.0)
                wall = walls.get(label, compute)
                steps[label] = StepStats(
                    wall=wall, compute=compute, wait=max(wall - compute, 0.0)
                )
            if tracer is not None:
                _attribute_flows(tracer, proc.rank, steps)
            fault_stats = {
                "retries": proc.retries,
                "timeouts": proc.timeouts,
                "messages_dropped": proc.messages_dropped,
                "messages_duplicated": proc.messages_duplicated,
                "crashed": proc.crashed,
            }
            ranks.append(
                RankReport(
                    rank=proc.rank,
                    steps=steps,
                    send_seconds=proc.send_seconds,
                    recv_wait_seconds=proc.recv_wait_seconds,
                    barrier_wait_seconds=proc.barrier_wait_seconds,
                    bytes_sent=proc.bytes_sent,
                    bytes_received=proc.bytes_received,
                    messages_sent=proc.messages_sent,
                    messages_received=proc.messages_received,
                    peak_resident_bytes=proc.memory.peak_resident,
                    peak_temporary_bytes=proc.memory.peak_temporary,
                    faults=fault_stats if any(fault_stats.values()) else None,
                )
            )
        return cls(
            num_ranks=len(metrics.processes),
            makespan_seconds=metrics.makespan,
            remote_bytes=metrics.remote_bytes,
            local_bytes=metrics.local_bytes,
            messages=metrics.messages,
            communication_seconds=metrics.communication_seconds(),
            communication_fraction=metrics.communication_fraction(),
            ranks=ranks,
        )

    @classmethod
    def from_sort_result(cls, result, tracer: Tracer | None = None) -> "RunReport":
        """Report for a :class:`repro.core.result.SortResult`."""
        return cls.from_metrics(
            result.metrics, tracer=tracer, step_seconds=result.step_seconds
        )

    @classmethod
    def from_backend_run(cls, run, tracer: Tracer | None = None) -> "RunReport":
        """Report for a :class:`repro.parallel.backend.BackendRun`.

        All-measured variant: walls are the workers' step boundaries,
        compute/wait splits come from the measured collective blocking, and
        peak RSS from the worker processes (see the module docstring's
        modeled-vs-measured table).
        """
        return cls.from_metrics(
            run.cluster_metrics(),
            tracer=tracer,
            step_seconds=[
                # A survivor-degraded run leaves excluded slots at None;
                # their step walls are simply absent, not zero.
                dict(out.step_seconds) if out is not None else {}
                for out in run.outputs
            ],
        )

    # ---------------------------------------------------- serialization

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "num_ranks": self.num_ranks,
            "makespan_seconds": self.makespan_seconds,
            "remote_bytes": self.remote_bytes,
            "local_bytes": self.local_bytes,
            "messages": self.messages,
            "communication_seconds": self.communication_seconds,
            "communication_fraction": self.communication_fraction,
            "ranks": [
                {
                    "rank": rr.rank,
                    "steps": {
                        label: {
                            "wall": s.wall,
                            "compute": s.compute,
                            "wait": s.wait,
                            "bytes_sent": s.bytes_sent,
                            "messages_sent": s.messages_sent,
                        }
                        for label, s in sorted(rr.steps.items())
                    },
                    "send_seconds": rr.send_seconds,
                    "recv_wait_seconds": rr.recv_wait_seconds,
                    "barrier_wait_seconds": rr.barrier_wait_seconds,
                    "bytes_sent": rr.bytes_sent,
                    "bytes_received": rr.bytes_received,
                    "messages_sent": rr.messages_sent,
                    "messages_received": rr.messages_received,
                    "peak_resident_bytes": rr.peak_resident_bytes,
                    "peak_temporary_bytes": rr.peak_temporary_bytes,
                    # the faults key exists only on fault-injected runs
                    **({"faults": rr.faults} if rr.faults is not None else {}),
                }
                for rr in self.ranks
            ],
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "RunReport":
        ranks = []
        for entry in doc["ranks"]:
            steps = {
                label: StepStats(
                    wall=s["wall"],
                    compute=s["compute"],
                    wait=s["wait"],
                    bytes_sent=s["bytes_sent"],
                    messages_sent=s["messages_sent"],
                )
                for label, s in entry["steps"].items()
            }
            fields = {k: v for k, v in entry.items() if k != "steps"}
            ranks.append(RankReport(steps=steps, **fields))
        return cls(
            num_ranks=doc["num_ranks"],
            makespan_seconds=doc["makespan_seconds"],
            remote_bytes=doc["remote_bytes"],
            local_bytes=doc["local_bytes"],
            messages=doc["messages"],
            communication_seconds=doc["communication_seconds"],
            communication_fraction=doc["communication_fraction"],
            ranks=ranks,
            schema=doc["schema"],
        )

    def save(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "RunReport":
        with open(path) as fh:
            return cls.from_json(json.load(fh))


def _attribute_flows(tracer: Tracer, rank: int, steps: dict[str, StepStats]) -> None:
    """Charge each flow injected by ``rank`` to the step span containing it.

    Only phase spans whose label is a known step participate; when spans
    nest, the shortest (innermost) containing span wins.
    """
    windows = [
        (span.start, span.end, span.duration, span.label)
        for span in tracer.phase_spans(rank)
        if span.label in steps
    ]
    if not windows:
        return
    for flow in tracer.flows:
        if flow.src != rank:
            continue
        best: str | None = None
        best_dur = float("inf")
        for start, end, duration, label in windows:
            if start <= flow.inject_t <= end and duration < best_dur:
                best, best_dur = label, duration
        if best is not None:
            steps[best].bytes_sent += flow.nbytes
            steps[best].messages_sent += 1


def capture_run_report(
    num_ranks: int = 16,
    n_keys: int = 60_000,
    seed: int = 20260805,
    backend: str | None = None,
):
    """Run the fixed-seed paper sort under capture; return (report, tracer).

    The default workload matches the golden determinism fingerprint
    (``tests/golden/sim_golden_p16.json``); the resulting report is what
    ``tests/golden/run_report_p16.json`` snapshots.  ``backend="process"``
    runs the same workload on real worker processes instead — same report
    schema, measured wall-clock numbers (machine-dependent, never golden).
    """
    import numpy as np

    from ..core.api import distributed_sort
    from .context import capture

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1 << 40, n_keys).astype(np.int64)
    with capture(name=f"sort-p{num_ranks}") as cap:
        result = distributed_sort(data, num_processors=num_ranks, backend=backend)
    tracer = cap.sessions[-1].tracer
    return RunReport.from_sort_result(result, tracer=tracer), tracer


if __name__ == "__main__":  # pragma: no cover - artifact/golden CLI
    import argparse
    import sys

    from .perfetto import export_chrome_trace

    parser = argparse.ArgumentParser(
        description="Capture the fixed-seed p=16 sort; emit report/trace artifacts."
    )
    parser.add_argument("--ranks", type=int, default=16)
    parser.add_argument("--keys", type=int, default=60_000)
    parser.add_argument("--seed", type=int, default=20260805)
    parser.add_argument(
        "--backend",
        choices=("simnet", "process"),
        default=None,
        help="execution substrate (default: ambient, i.e. simnet)",
    )
    parser.add_argument(
        "--report-out", default="-", help="run-report JSON path ('-': stdout)"
    )
    parser.add_argument("--trace-out", default=None, help="Perfetto trace path")
    args = parser.parse_args()
    report, tracer = capture_run_report(
        args.ranks, args.keys, args.seed, backend=args.backend
    )
    if args.trace_out:
        export_chrome_trace(tracer, args.trace_out)
    if args.report_out == "-":
        json.dump(report.to_json(), sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
    else:
        report.save(args.report_out)
