"""repro — load-balanced distributed sample sort on a simulated PGX.D runtime.

Reproduction of Khatami et al., "A Load-Balanced Parallel and Distributed
Sorting Algorithm Implemented with PGX.D" (IPPS 2017, arXiv:1611.00463).

Public entry points:

- :func:`repro.core.api.distributed_sort` / :class:`repro.core.api.DistributedSorter`
  — the paper's six-step sorting algorithm on a simulated cluster.
- :mod:`repro.workloads` — the paper's input distributions and the synthetic
  Twitter-shaped graph workload.
- :mod:`repro.baselines` — Spark ``sortByKey``, bitonic, radix and
  no-investigator sample-sort baselines.
- :mod:`repro.experiments` — one module per paper table/figure.
"""

from importlib.metadata import PackageNotFoundError, version

try:  # pragma: no cover - depends on install state
    __version__ = version("repro")
except PackageNotFoundError:  # pragma: no cover
    __version__ = "0.0.0+uninstalled"

__all__ = [
    "DistributedSorter",
    "SortConfig",
    "SortResult",
    "SorterPool",
    "distributed_sort",
    "__version__",
]

_API = {"DistributedSorter", "SortConfig", "SorterPool", "distributed_sort"}


def __getattr__(name):
    # Lazy so that `import repro.simnet` works without pulling the whole stack.
    if name in _API:
        from . import core

        return getattr(core.api, name)
    if name == "SortResult":
        from .core.result import SortResult

        return SortResult
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
