"""Comparison systems: Spark sortByKey, bitonic, radix, and the ablation.

:mod:`repro.baselines.spark` — a mini bulk-synchronous engine with a real
TimSort, reproducing the mechanisms behind Spark's published slowdown;
:mod:`repro.baselines.bitonic` — Batcher's bitonic sort (related work);
:mod:`repro.baselines.radix` — partitioned parallel radix sort (related
work); :mod:`repro.baselines.naive_sample_sort` — the paper's own algorithm
with its contributions disabled.
"""

from .bitonic import BitonicResult, bitonic_sort
from .naive_sample_sort import naive_sample_sort
from .radix import RadixResult, assign_buckets, radix_sort
from .spark.engine import SparkConfig, SparkSortResult, spark_sort_by_key
from .spark.timsort import timsort, timsort_with_stats

__all__ = [
    "BitonicResult",
    "RadixResult",
    "SparkConfig",
    "SparkSortResult",
    "assign_buckets",
    "bitonic_sort",
    "naive_sample_sort",
    "radix_sort",
    "spark_sort_by_key",
    "timsort",
    "timsort_with_stats",
]
