"""Partitioned parallel radix sort (paper section II, related work).

"Radix sort is also used for implementing parallel and distributed sorting
algorithms ... One of the big challenges in implementing this sorting
technique is having unequal number of input keys.  It usually suffers in
irregularity in communication and computation" — because bucket assignment
follows the *bit patterns* of the keys, not their quantiles.

The classic partitioned scheme (Lee et al. 2002): histogram the top ``b``
bits globally, assign contiguous bucket ranges to processors by prefix sums
(as balanced as whole buckets allow — a bucket cannot be split, which is
precisely where duplicate-heavy data defeats it), redistribute once, and
LSD-radix-sort locally.  Integer keys only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..pgxd.comm_manager import exchange_arrays
from ..pgxd.config import PgxdConfig
from ..pgxd.runtime import Machine, PgxdRuntime
from ..simnet.calls import Compute
from ..simnet.collectives import allgather
from ..simnet.cost import CostModel
from ..simnet.metrics import ClusterMetrics
from ..simnet.network import NetworkModel

TAG_REDISTRIBUTE = 501

#: Bits histogrammed for the global bucket assignment.
BUCKET_BITS = 10

#: Bits consumed per local LSD pass.
DIGIT_BITS = 11


@dataclass
class RadixResult:
    """Outcome of a distributed radix sort."""

    per_processor: list[np.ndarray]
    metrics: ClusterMetrics

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.makespan

    def to_array(self) -> np.ndarray:
        if not self.per_processor:
            return np.empty(0)
        return np.concatenate(self.per_processor)

    def is_globally_sorted(self) -> bool:
        flat = self.to_array()
        return bool(np.all(flat[:-1] <= flat[1:])) if len(flat) else True

    def counts(self) -> np.ndarray:
        return np.array([len(p) for p in self.per_processor], dtype=np.int64)

    def imbalance(self) -> float:
        c = self.counts()
        if c.sum() == 0:
            return 1.0
        return float(c.max() / c.mean())


def assign_buckets(global_hist: np.ndarray, num_processors: int) -> np.ndarray:
    """Greedy contiguous assignment of buckets to processors.

    Returns ``owner[bucket]``.  Walks buckets in order, moving to the next
    processor once its share reaches ``total / p`` — whole buckets only, so
    one hot bucket (many duplicated keys) lands on a single processor.
    """
    total = int(global_hist.sum())
    owners = np.zeros(len(global_hist), dtype=np.int64)
    if total == 0 or num_processors == 1:
        return owners
    target = total / num_processors
    acc = 0
    proc = 0
    for b, count in enumerate(global_hist):
        owners[b] = proc
        acc += int(count)
        while acc >= target * (proc + 1) and proc < num_processors - 1:
            proc += 1
    return owners


def radix_program(machine: Machine, block: np.ndarray, key_bits: int):
    """One rank of the partitioned parallel radix sort."""
    cost, scale = machine.cost, machine.config.data_scale
    size = machine.size
    shift = max(key_bits - BUCKET_BITS, 0)
    buckets = (block >> shift).astype(np.int64)
    hist = np.bincount(buckets, minlength=1 << min(BUCKET_BITS, key_bits))
    yield Compute(
        cost.scan_seconds(int(block.nbytes * scale), machine.threads),
        label="radix-histogram",
    )
    all_hists = yield from allgather(machine.proc, hist)
    global_hist = np.sum(all_hists, axis=0)
    owners = assign_buckets(global_hist, size)
    dest = owners[buckets]
    order = np.argsort(dest, kind="stable")
    sorted_by_dest = block[order]
    dest_sorted = dest[order]
    edges = np.searchsorted(dest_sorted, np.arange(size + 1))
    outgoing = [sorted_by_dest[edges[d] : edges[d + 1]] for d in range(size)]
    # Announce sizes: every rank learns what it will receive from everyone.
    counts = np.array([len(o) for o in outgoing], dtype=np.int64)
    all_counts = yield from allgather(machine.proc, counts)
    announced = [int(all_counts[s][machine.rank]) * block.dtype.itemsize for s in range(size)]
    received = yield from exchange_arrays(
        machine.proc, outgoing, announced, block.dtype, TAG_REDISTRIBUTE, machine.config
    )
    local = np.concatenate(received) if received else np.empty(0, dtype=block.dtype)
    # Local LSD radix sort: ceil(bits / DIGIT_BITS) counting passes, each a
    # streaming pass over the data.
    passes = max(math.ceil(key_bits / DIGIT_BITS), 1)
    yield Compute(
        passes * cost.scan_seconds(int(local.nbytes * scale) * 2, machine.threads),
        label="radix-local-sort",
    )
    return np.sort(local, kind="stable")


def radix_sort(
    data: np.ndarray,
    num_processors: int = 8,
    *,
    network: NetworkModel | None = None,
    cost: CostModel | None = None,
    data_scale: float = 1.0,
    threads_per_machine: int = 32,
) -> RadixResult:
    """Sort non-negative integer keys with the distributed radix baseline."""
    data = np.asarray(data)
    if not np.issubdtype(data.dtype, np.integer):
        raise TypeError("radix sort requires integer keys")
    if len(data) and data.min() < 0:
        raise ValueError("radix baseline requires non-negative keys")
    key_bits = max(int(data.max()).bit_length(), 1) if len(data) else 1
    n = len(data)
    bounds = [n * i // num_processors for i in range(num_processors + 1)]
    blocks = [data[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
    runtime = PgxdRuntime(
        num_processors,
        config=PgxdConfig(threads_per_machine=threads_per_machine, data_scale=data_scale),
        network=network,
        cost=cost,
    )
    run = runtime.run(
        lambda machine: radix_program(machine, blocks[machine.rank], key_bits)
    )
    return RadixResult(list(run.results), run.metrics)
