"""Ablation baseline: sample sort *without* the paper's contributions.

Same six-step pipeline as :func:`repro.distributed_sort` but with the
paper's two mechanisms disabled:

* **no investigator** — duplicated splitters fall back to plain binary
  search (Figure 3b), so tied key ranges pile onto single processors;
* **no balanced-merge handler** — thread runs and received runs are folded
  sequentially instead of merged pairwise in parallel.

The ablation benchmarks quantify each mechanism's contribution by flipping
them independently.
"""

from __future__ import annotations

import numpy as np

from ..core.api import DistributedSorter
from ..core.result import SortResult


def naive_sample_sort(
    data: np.ndarray,
    num_processors: int = 8,
    *,
    investigator: bool = False,
    balanced_merge: bool = False,
    **overrides,
) -> SortResult:
    """Run the sample sort with the paper's mechanisms switched off.

    Both switches default to off (the fully naive baseline); pass one of
    them as True to ablate a single mechanism.
    """
    sorter = DistributedSorter(
        num_processors=num_processors,
        investigator=investigator,
        balanced_merge=balanced_merge,
        **overrides,
    )
    return sorter.sort(data)
