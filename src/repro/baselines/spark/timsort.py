"""TimSort — the local sort used by Spark's ``sortByKey`` (paper section II).

"TimSort [24] is chosen as a sorting technique in Spark ... This algorithm
starts by finding subsequences of the elements in descending or ascending
order and performs balanced merges on them in each merging step.  For this
purpose, it proceeds on the chosen minimum run sizes that are bulked up by
using insertion sort and partially merge them in place."

This is a faithful reimplementation of the classic algorithm (Peters 2002):

* natural-run detection with strict-descending run reversal,
* minimum run length derived from ``n`` (32..64 with the rounding bit),
* binary insertion sort to extend short runs,
* a run stack maintaining the invariants ``A > B + C`` and ``B > C``,
* galloping mode entered after :data:`MIN_GALLOP` consecutive wins.

It is used three ways: as the correctness oracle for the Spark baseline's
local sorts, to *measure* run structure (``run_profile``) so the cost model
can price partially-sorted inputs the way the paper describes TimSort
winning, and in tests as a reference against Python's built-in (itself a
TimSort descendant).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

#: Consecutive wins from one run before switching to galloping mode.
MIN_GALLOP = 7


def min_run_length(n: int) -> int:
    """Compute TimSort's minimum run length for an ``n``-element array.

    Returns ``n`` for ``n < 64``; otherwise a value in ``[32, 64]`` such
    that ``n / minrun`` is close to, but no larger than, a power of two.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    r = 0
    while n >= 64:
        r |= n & 1
        n >>= 1
    return n + r


def binary_insertion_sort(
    data: list, lo: int, hi: int, start: int, key: Callable[[Any], Any]
) -> None:
    """Sort ``data[lo:hi]`` in place given that ``data[lo:start]`` is sorted."""
    if start <= lo:
        start = lo + 1
    for i in range(start, hi):
        pivot = data[i]
        pk = key(pivot)
        left, right = lo, i
        while left < right:
            mid = (left + right) >> 1
            if pk < key(data[mid]):
                right = mid
            else:
                left = mid + 1
        data[left + 1 : i + 1] = data[left:i]
        data[left] = pivot


def count_run(data: Sequence, lo: int, hi: int, key: Callable[[Any], Any]) -> tuple[int, bool]:
    """Length of the natural run starting at ``lo`` and whether it descends.

    A descending run must be *strictly* decreasing so that reversing it
    preserves stability.
    """
    if hi - lo <= 1:
        return hi - lo, False
    i = lo + 1
    if key(data[i]) < key(data[lo]):
        while i + 1 < hi and key(data[i + 1]) < key(data[i]):
            i += 1
        return i - lo + 1, True
    while i + 1 < hi and key(data[i + 1]) >= key(data[i]):
        i += 1
    return i - lo + 1, False


def gallop_left(k: Any, data: list, lo: int, hi: int, key: Callable[[Any], Any]) -> int:
    """Leftmost insertion point for ``k`` in sorted ``data[lo:hi]`` using
    exponential search followed by bisection."""
    offset = 1
    while lo + offset < hi and key(data[lo + offset - 1]) < k:
        offset <<= 1
    left = lo + (offset >> 1)
    right = min(lo + offset, hi)
    while left < right:
        mid = (left + right) >> 1
        if key(data[mid]) < k:
            left = mid + 1
        else:
            right = mid
    return left


def gallop_right(k: Any, data: list, lo: int, hi: int, key: Callable[[Any], Any]) -> int:
    """Rightmost insertion point for ``k`` in sorted ``data[lo:hi]``."""
    offset = 1
    while lo + offset < hi and key(data[lo + offset - 1]) <= k:
        offset <<= 1
    left = lo + (offset >> 1)
    right = min(lo + offset, hi)
    while left < right:
        mid = (left + right) >> 1
        if key(data[mid]) <= k:
            left = mid + 1
        else:
            right = mid
    return left


class _TimSorter:
    """Run-stack state machine for one sort invocation."""

    def __init__(self, data: list, key: Callable[[Any], Any]):
        self.data = data
        self.key = key
        self.stack: list[tuple[int, int]] = []  # (base, length)
        self.min_gallop = MIN_GALLOP
        #: Statistics for the cost model / tests.
        self.merges = 0
        self.merged_elements = 0
        self.gallops = 0

    # -------------------------------------------------------------- driver

    def sort(self) -> None:
        data, key = self.data, self.key
        n = len(data)
        if n < 2:
            return
        minrun = min_run_length(n)
        lo = 0
        while lo < n:
            run_len, descending = count_run(data, lo, n, key)
            if descending:
                data[lo : lo + run_len] = data[lo : lo + run_len][::-1]
            if run_len < minrun:
                forced = min(minrun, n - lo)
                binary_insertion_sort(data, lo, lo + forced, lo + run_len, key)
                run_len = forced
            self.stack.append((lo, run_len))
            self._merge_collapse()
            lo += run_len
        self._merge_force_collapse()

    # --------------------------------------------------------- run stack

    def _merge_collapse(self) -> None:
        """Restore the invariants A > B + C and B > C on the run stack."""
        stack = self.stack
        while len(stack) > 1:
            n = len(stack) - 2
            if n > 0 and stack[n - 1][1] <= stack[n][1] + stack[n + 1][1]:
                if stack[n - 1][1] < stack[n + 1][1]:
                    self._merge_at(n - 1)
                else:
                    self._merge_at(n)
            elif stack[n][1] <= stack[n + 1][1]:
                self._merge_at(n)
            else:
                break

    def _merge_force_collapse(self) -> None:
        stack = self.stack
        while len(stack) > 1:
            n = len(stack) - 2
            if n > 0 and stack[n - 1][1] < stack[n + 1][1]:
                n -= 1
            self._merge_at(n)

    def _merge_at(self, i: int) -> None:
        data, key = self.data, self.key
        base_a, len_a = self.stack[i]
        base_b, len_b = self.stack[i + 1]
        assert base_a + len_a == base_b, "runs must be adjacent"
        self.stack[i] = (base_a, len_a + len_b)
        del self.stack[i + 1]
        # Trim: elements of A already <= B[0] stay put; ditto for A[-1] < B.
        k = gallop_right(key(data[base_b]), data, base_a, base_a + len_a, key)
        trimmed = k - base_a
        base_a, len_a = k, len_a - trimmed
        if len_a == 0:
            return
        len_b = gallop_left(key(data[base_a + len_a - 1]), data, base_b, base_b + len_b, key) - base_b
        if len_b == 0:
            return
        self.merges += 1
        self.merged_elements += len_a + len_b
        self._merge_runs(base_a, len_a, base_b, len_b)

    def _merge_runs(self, base_a: int, len_a: int, base_b: int, len_b: int) -> None:
        """Merge adjacent runs with galloping; simple two-buffer variant.

        CPython merges in place with one temp buffer; a Python-level
        reimplementation gains nothing from that, so we merge into a scratch
        list, preserving the galloping behaviour (and counting gallops) that
        gives TimSort its partially-sorted advantage.
        """
        data, key = self.data, self.key
        a = data[base_a : base_a + len_a]
        b = data[base_b : base_b + len_b]
        out: list = []
        ia = ib = 0
        wins_a = wins_b = 0
        while ia < len_a and ib < len_b:
            if key(b[ib]) < key(a[ia]):
                out.append(b[ib])
                ib += 1
                wins_b += 1
                wins_a = 0
            else:
                out.append(a[ia])
                ia += 1
                wins_a += 1
                wins_b = 0
            if wins_a >= self.min_gallop and ia < len_a and ib < len_b:
                self.gallops += 1
                cut = gallop_right(key(b[ib]), a, ia, len_a, key)
                out.extend(a[ia:cut])
                ia = cut
                wins_a = 0
            elif wins_b >= self.min_gallop and ia < len_a and ib < len_b:
                self.gallops += 1
                cut = gallop_left(key(a[ia]), b, ib, len_b, key)
                out.extend(b[ib:cut])
                ib = cut
                wins_b = 0
        out.extend(a[ia:])
        out.extend(b[ib:])
        data[base_a : base_b + len_b] = out


def timsort(values: Sequence, key: Callable[[Any], Any] | None = None) -> list:
    """Stable TimSort; returns a new sorted list."""
    data = list(values)
    sorter = _TimSorter(data, key or (lambda x: x))
    sorter.sort()
    return data


def timsort_with_stats(
    values: Sequence, key: Callable[[Any], Any] | None = None
) -> tuple[list, dict[str, int]]:
    """Sort and report merge/gallop statistics (for the cost model)."""
    data = list(values)
    sorter = _TimSorter(data, key or (lambda x: x))
    sorter.sort()
    return data, {
        "merges": sorter.merges,
        "merged_elements": sorter.merged_elements,
        "gallops": sorter.gallops,
    }


def run_profile(values: Sequence, key: Callable[[Any], Any] | None = None) -> dict[str, float]:
    """Natural-run structure of an input: how presorted is it?

    Returns the number of natural runs and the mean run length.  The Spark
    cost model uses this to price TimSort: fewer, longer runs mean less
    merge work ("it performs better when the data is partially sorted").
    """
    key = key or (lambda x: x)
    n = len(values)
    if n == 0:
        return {"runs": 0, "mean_run_length": 0.0, "presortedness": 1.0}
    runs = 0
    lo = 0
    while lo < n:
        run_len, _ = count_run(values, lo, n, key)
        runs += 1
        lo += run_len
    return {
        "runs": runs,
        "mean_run_length": n / runs,
        # 1.0 when a single run covers everything; -> 0 for random data.
        "presortedness": 1.0 - (runs - 1) / max(n - 1, 1),
    }
