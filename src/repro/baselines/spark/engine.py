"""MiniSpark: a bulk-synchronous sortByKey on the simulated cluster.

Reproduces the *mechanisms* the paper contrasts with PGX.D:

* a **driver** (co-located on rank 0) that schedules every task — task
  launches serialize through the driver and each costs
  ``spark_task_overhead``;
* **stage barriers** — the driver collects a "done" from every task before
  launching the next stage (the MapReduce bulk-synchronization the paper
  calls out: "PGX.D ... is more relaxed compared to the
  bulk-synchronization model used in the MapReduce models");
* a **materialized shuffle** — map tasks serialize + spill their output to
  local shuffle files, reduce tasks fetch over the network, read from disk
  and deserialize (costs from the Spark constants in
  :class:`~repro.simnet.cost.CostModel`);
* **TimSort** local sorts at JVM rates, priced by the input's natural-run
  structure so partially sorted data is cheaper (the TimSort advantage the
  paper mentions).

The data plane is real: the returned partitions are truly sorted and are
verified against numpy in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ...pgxd.config import PgxdConfig
from ...pgxd.runtime import Machine, PgxdRuntime
from ...simnet.calls import Compute, Isend, Message, Now, Recv, Send
from ...simnet.cost import CostModel
from ...simnet.metrics import ClusterMetrics
from ...simnet.network import NetworkModel
from .rdd import determine_bounds, partition_by_range, reservoir_sample

DRIVER = 0
TAG_LAUNCH = 301
TAG_SAMPLES = 302
TAG_BOUNDS = 303
TAG_DONE = 304
TAG_SHUFFLE = 305
TAG_COUNTS = 306

#: Spark's RangePartitioner samples ~20 keys per output partition, tripled
#: per input partition to survive skew.
SAMPLES_PER_PARTITION = 60

#: Modeled wire size of a serialized task closure.
TASK_DESCRIPTOR_BYTES = 4 * 1024

STAGE_LABELS = ("spark-sample", "spark-map", "spark-reduce")


@dataclass(frozen=True)
class SparkConfig:
    """Deployment shape of the MiniSpark job."""

    num_executors: int = 8
    #: RDD partitions per executor.  Spark parallelizes *across* tasks (one
    #: core each), so a well-tuned deployment on the paper's 32-thread
    #: machines runs one partition per core.
    tasks_per_executor: int = 32
    #: Executor cores available to run tasks concurrently.
    cores_per_executor: int = 32
    #: Virtual data multiplier (see PgxdConfig.data_scale).
    data_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_executors < 1:
            raise ValueError("num_executors must be >= 1")
        if self.tasks_per_executor < 1:
            raise ValueError("tasks_per_executor must be >= 1")
        if self.cores_per_executor < 1:
            raise ValueError("cores_per_executor must be >= 1")
        if self.data_scale <= 0:
            raise ValueError("data_scale must be positive")

    @property
    def num_partitions(self) -> int:
        return self.num_executors * self.tasks_per_executor

    def executor_of(self, partition: int) -> int:
        return partition // self.tasks_per_executor


@dataclass
class SparkSortResult:
    """Outcome of one MiniSpark sortByKey."""

    per_partition: list[np.ndarray]
    stage_seconds: dict[str, float]
    metrics: ClusterMetrics

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.makespan

    def to_array(self) -> np.ndarray:
        if not self.per_partition:
            return np.empty(0)
        return np.concatenate(self.per_partition)

    def is_globally_sorted(self) -> bool:
        prev = None
        for part in self.per_partition:
            if len(part) == 0:
                continue
            if np.any(part[:-1] > part[1:]):
                return False
            if prev is not None and part[0] < prev:
                return False
            prev = part[-1]
        return True

    def counts(self) -> np.ndarray:
        return np.array([len(p) for p in self.per_partition], dtype=np.int64)

    def imbalance(self) -> float:
        c = self.counts()
        if c.sum() == 0:
            return 1.0
        return float(c.max() / c.mean())


def natural_runs(keys: np.ndarray) -> int:
    """Number of ascending natural runs (vectorized TimSort run count)."""
    if len(keys) <= 1:
        return min(len(keys), 1)
    return 1 + int(np.sum(keys[1:] < keys[:-1]))


def timsort_seconds(cost: CostModel, keys: np.ndarray, scale: float) -> float:
    """TimSort cost priced by run structure: one detection pass plus a
    merge tree of depth log2(runs) — presorted inputs collapse to the
    detection pass, the paper's TimSort advantage."""
    n = len(keys) * scale
    if n <= 1:
        return 0.0
    # Runs scale with the virtual multiplier: a random real array stands for
    # a random virtual array (runs ~ n/2), while a presorted real array
    # stands for a presorted virtual one (1 run) at any scale.
    runs = min(1 + (natural_runs(keys) - 1) * scale, n / 2)
    comparisons = n + n * math.log2(max(runs, 2)) if runs > 1 else n
    return comparisons / (cost.compare_rate * cost.spark_sort_factor)


def _driver_launch_stage(machine: Machine, cfg: SparkConfig, stage: str):
    """Driver side: schedule one task per partition, serially."""
    cost = machine.cost
    yield Compute(cost.spark_stage_overhead, label=f"{stage}:schedule")
    for pid in range(cfg.num_partitions):
        yield Compute(cost.spark_task_overhead, label=f"{stage}:schedule")
        yield Send(
            dst=cfg.executor_of(pid),
            nbytes=TASK_DESCRIPTOR_BYTES,
            payload=("launch", stage, pid),
            tag=TAG_LAUNCH,
        )


def _executor_receive_launches(machine: Machine, cfg: SparkConfig):
    """Executor side: wait for this rank's task launches for one stage."""
    for _ in range(cfg.tasks_per_executor):
        yield Recv(src=DRIVER, tag=TAG_LAUNCH)


def _stage_barrier(machine: Machine, cfg: SparkConfig, payload=None):
    """Executor reports done; driver collects a done from every executor."""
    yield Isend(dst=DRIVER, nbytes=256, payload=payload, tag=TAG_DONE)
    if machine.rank == DRIVER:
        dones = []
        for _ in range(machine.size):
            msg: Message = yield Recv(tag=TAG_DONE)
            dones.append(msg.payload)
        return dones
    return None


def spark_sort_program(machine: Machine, local_block: np.ndarray, cfg: SparkConfig):
    """SPMD program: every rank is an executor, rank 0 also drives."""
    rank, size = machine.rank, machine.size
    cost, scale = machine.cost, cfg.data_scale
    t_start = yield Now()
    # This executor's task partitions.
    n = len(local_block)
    t = cfg.tasks_per_executor
    bounds_idx = [n * i // t for i in range(t + 1)]
    my_parts = [local_block[lo:hi] for lo, hi in zip(bounds_idx, bounds_idx[1:])]
    machine.data.store("rdd", np.ascontiguousarray(local_block))
    stage_seconds: dict[str, float] = {}

    # ---------------------------------------------------- stage 1: sample
    if rank == DRIVER:
        yield from _driver_launch_stage(machine, cfg, STAGE_LABELS[0])
    yield from _executor_receive_launches(machine, cfg)
    # Reservoir sampling scans each partition once.
    scan_costs = [
        cost.scan_seconds(int(p.nbytes * scale)) for p in my_parts
    ]
    yield Compute(
        machine.tasks.parallel_time(scan_costs), label=STAGE_LABELS[0]
    )
    samples = [
        reservoir_sample(p, SAMPLES_PER_PARTITION, seed=cfg.seed + rank * t + i)
        for i, p in enumerate(my_parts)
    ]
    my_samples = np.concatenate(samples) if samples else np.empty(0)
    yield Isend(
        dst=DRIVER, nbytes=int(my_samples.nbytes), payload=my_samples, tag=TAG_SAMPLES
    )
    if rank == DRIVER:
        collected = []
        for _ in range(size):
            msg = yield Recv(tag=TAG_SAMPLES)
            collected.append(msg.payload)
        all_samples = np.concatenate(collected)
        yield Compute(
            cost.sort_seconds(len(all_samples)), label=STAGE_LABELS[0]
        )
        bounds = determine_bounds(all_samples, cfg.num_partitions)
        for dst in range(size):
            if dst != DRIVER:
                yield Send(dst=dst, nbytes=int(bounds.nbytes), payload=bounds, tag=TAG_BOUNDS)
    else:
        msg = yield Recv(src=DRIVER, tag=TAG_BOUNDS)
        bounds = msg.payload
    t_sample_end = yield Now()
    stage_seconds[STAGE_LABELS[0]] = t_sample_end - t_start

    # ------------------------------------------- stage 2: map / shuffle write
    if rank == DRIVER:
        yield from _driver_launch_stage(machine, cfg, STAGE_LABELS[1])
    yield from _executor_receive_launches(machine, cfg)
    shuffle_out: dict[int, list[np.ndarray]] = {p: [] for p in range(cfg.num_partitions)}
    map_costs = []
    counts = np.zeros(cfg.num_partitions, dtype=np.int64)
    for part in my_parts:
        pids = partition_by_range(part, bounds)
        order = np.argsort(pids, kind="stable")
        sorted_by_pid = part[order]
        pid_sorted = pids[order]
        edges = np.searchsorted(pid_sorted, np.arange(cfg.num_partitions + 1))
        for pid in range(cfg.num_partitions):
            piece = sorted_by_pid[edges[pid] : edges[pid + 1]]
            if len(piece):
                shuffle_out[pid].append(piece)
                counts[pid] += len(piece)
        vbytes = int(part.nbytes * scale)
        # CPU side of the shuffle write: route + serialize (per task).
        map_costs.append(cost.scan_seconds(vbytes) + cost.spark_serialize_seconds(vbytes))
    machine.data.memory.alloc(machine.data.scaled(int(local_block.nbytes)), temporary=True)
    # Tasks share one local disk: the spill is charged at executor level.
    executor_vbytes = int(local_block.nbytes * scale)
    yield Compute(
        machine.tasks.parallel_time(map_costs)
        + cost.spark_disk_write_seconds(executor_vbytes),
        label=STAGE_LABELS[1],
    )
    # Stage barrier: done messages carry this executor's map-output counts
    # (the MapOutputTracker registration).
    dones = yield from _stage_barrier(machine, cfg, payload=(rank, counts))
    if rank == DRIVER:
        counts_matrix = np.zeros((size, cfg.num_partitions), dtype=np.int64)
        for src, cnt in dones:
            counts_matrix[src] = cnt
        for dst in range(size):
            if dst != DRIVER:
                yield Send(
                    dst=dst,
                    nbytes=int(counts_matrix.nbytes),
                    payload=counts_matrix,
                    tag=TAG_COUNTS,
                )
    else:
        msg = yield Recv(src=DRIVER, tag=TAG_COUNTS)
        counts_matrix = msg.payload
    t_map_end = yield Now()
    stage_seconds[STAGE_LABELS[1]] = t_map_end - t_sample_end

    # ------------------------------------------------- stage 3: reduce
    if rank == DRIVER:
        yield from _driver_launch_stage(machine, cfg, STAGE_LABELS[2])
    yield from _executor_receive_launches(machine, cfg)
    # Send every shuffle block to the executor owning its partition.
    for pid in range(cfg.num_partitions):
        dst = cfg.executor_of(pid)
        if dst == rank or not shuffle_out[pid]:
            continue
        # One shuffle block per (executor, partition): the map tasks' pieces
        # land in the same local file and are fetched as a unit.
        block = (
            np.concatenate(shuffle_out[pid])
            if len(shuffle_out[pid]) > 1
            else shuffle_out[pid][0]
        )
        yield Isend(
            dst=dst,
            nbytes=int(block.nbytes * scale),
            payload=(pid, block),
            tag=TAG_SHUFFLE,
        )
    # Fetch: every remote executor that produced data for my partitions
    # sends one block per (their partition granularity) piece.
    my_pids = [pid for pid in range(cfg.num_partitions) if cfg.executor_of(pid) == rank]
    expected = 0
    for src in range(size):
        if src == rank:
            continue
        for pid in my_pids:
            if counts_matrix[src, pid] > 0:
                expected += 1
    fetched: dict[int, list[np.ndarray]] = {pid: [] for pid in my_pids}
    for pid in my_pids:  # local blocks bypass the network
        fetched[pid].extend(shuffle_out[pid])
    received_v = 0
    for _ in range(expected):
        msg = yield Recv(tag=TAG_SHUFFLE)
        pid, piece = msg.payload
        fetched[pid].append(piece)
        received_v += int(piece.nbytes * scale)
    machine.data.memory.free(machine.data.scaled(int(local_block.nbytes)), temporary=True)
    # Disk read (shared executor disk) + per-task deserialize and TimSort.
    sorted_parts: dict[int, np.ndarray] = {}
    reduce_costs = []
    fetched_total_v = 0
    machine.data.memory.alloc(received_v, temporary=True)
    for pid in my_pids:
        blocks = fetched[pid]
        merged = (
            np.concatenate(blocks)
            if blocks
            else np.empty(0, dtype=local_block.dtype)
        )
        vbytes = int(merged.nbytes * scale)
        fetched_total_v += vbytes
        reduce_costs.append(
            cost.spark_deserialize_seconds(vbytes) + timsort_seconds(cost, merged, scale)
        )
        sorted_parts[pid] = np.sort(merged, kind="stable")
    yield Compute(
        machine.tasks.parallel_time(reduce_costs)
        + cost.spark_disk_read_seconds(fetched_total_v),
        label=STAGE_LABELS[2],
    )
    machine.data.memory.free(received_v, temporary=True)
    for pid, arr in sorted_parts.items():
        machine.data.store(f"out:{pid}", arr)
    yield from _stage_barrier(machine, cfg)
    t_reduce_end = yield Now()
    stage_seconds[STAGE_LABELS[2]] = t_reduce_end - t_map_end
    return {"partitions": sorted_parts, "stages": stage_seconds}


def spark_sort_by_key(
    data: np.ndarray,
    num_executors: int = 8,
    *,
    config: SparkConfig | None = None,
    network: NetworkModel | None = None,
    cost: CostModel | None = None,
    data_scale: float = 1.0,
    rank_speed: list[float] | None = None,
) -> SparkSortResult:
    """Run MiniSpark ``sortByKey`` on driver-side ``data``.

    The cluster has ``num_executors`` machines; the driver rides on rank 0
    as in a co-located deployment.  Returns globally sorted partitions plus
    stage timings and cluster metrics.
    """
    cfg = config or SparkConfig(
        num_executors=num_executors, data_scale=data_scale
    )
    data = np.asarray(data)
    n = len(data)
    bounds = [n * i // cfg.num_executors for i in range(cfg.num_executors + 1)]
    blocks = [data[lo:hi] for lo, hi in zip(bounds, bounds[1:])]
    runtime = PgxdRuntime(
        cfg.num_executors,
        config=PgxdConfig(
            threads_per_machine=cfg.cores_per_executor, data_scale=cfg.data_scale
        ),
        network=network,
        cost=cost,
        rank_speed=rank_speed,
    )
    run = runtime.run(
        lambda machine: spark_sort_program(machine, blocks[machine.rank], cfg)
    )
    per_partition: list[np.ndarray] = [None] * cfg.num_partitions  # type: ignore
    stage_seconds = {label: 0.0 for label in STAGE_LABELS}
    for rank_out in run.results:
        for pid, arr in rank_out["partitions"].items():
            per_partition[pid] = arr
        for label, secs in rank_out["stages"].items():
            stage_seconds[label] = max(stage_seconds[label], secs)
    per_partition = [
        p if p is not None else np.empty(0, dtype=data.dtype) for p in per_partition
    ]
    return SparkSortResult(per_partition, stage_seconds, run.metrics)
