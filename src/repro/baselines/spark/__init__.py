"""MiniSpark: bulk-synchronous sortByKey baseline (driver, stages, shuffle,
TimSort) on the simulated cluster."""

from .engine import SparkConfig, SparkSortResult, spark_sort_by_key, spark_sort_program
from .rdd import RDD, determine_bounds, partition_by_range, reservoir_sample
from .timsort import min_run_length, run_profile, timsort, timsort_with_stats

__all__ = [
    "RDD",
    "SparkConfig",
    "SparkSortResult",
    "determine_bounds",
    "min_run_length",
    "partition_by_range",
    "reservoir_sample",
    "run_profile",
    "spark_sort_by_key",
    "spark_sort_program",
    "timsort",
    "timsort_with_stats",
]
