"""Minimal RDD and range partitioner, enough to express ``sortByKey``.

Spark's distributed sort (section II of the paper) has three stages over an
RDD: *sample* (reservoir-sample each partition, driver picks range bounds),
*map* (partition records by range), *reduce* (fetch + locally sort each
range).  This module provides the data-plane pieces: a partitioned dataset
and the RangePartitioner's bound selection / key routing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class RDD:
    """A dataset split into ordered partitions (numpy arrays)."""

    partitions: list[np.ndarray]

    def __post_init__(self) -> None:
        if not all(isinstance(p, np.ndarray) for p in self.partitions):
            raise TypeError("RDD partitions must be numpy arrays")

    @classmethod
    def from_array(cls, data: np.ndarray, num_partitions: int) -> "RDD":
        """Block-split driver data into ``num_partitions`` partitions."""
        data = np.asarray(data)
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        n = len(data)
        bounds = [n * i // num_partitions for i in range(num_partitions + 1)]
        return cls([data[lo:hi] for lo, hi in zip(bounds, bounds[1:])])

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def count(self) -> int:
        return sum(len(p) for p in self.partitions)

    def collect(self) -> np.ndarray:
        if not self.partitions:
            return np.empty(0)
        return np.concatenate(self.partitions)

    def nbytes(self) -> int:
        return sum(int(p.nbytes) for p in self.partitions)


def reservoir_sample(partition: np.ndarray, k: int, seed: int) -> np.ndarray:
    """Uniform sample of up to ``k`` elements (Algorithm R, vectorized).

    Spark's RangePartitioner sketches each partition this way; unlike the
    PGX.D sorter's *regular* samples these are unordered random picks.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    n = len(partition)
    if n <= k:
        return partition.copy()
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=k, replace=False)
    return partition[idx]


def determine_bounds(samples: np.ndarray, num_partitions: int) -> np.ndarray:
    """Range-partition bounds from collected samples (driver side).

    Simplified from Spark's weighted version (our partitions are equal
    sized, so the weights are uniform): sort the samples and take the
    ``num_partitions - 1`` quantile values.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    samples = np.sort(np.asarray(samples), kind="stable")
    if num_partitions == 1 or len(samples) == 0:
        return samples[:0].copy()
    positions = (np.arange(1, num_partitions, dtype=np.int64) * len(samples)) // num_partitions
    positions = np.minimum(positions, len(samples) - 1)
    return samples[positions].copy()


def partition_by_range(keys: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Destination partition id for every key (RangePartitioner.getPartition).

    Keys <= bounds[0] go to partition 0, keys in (bounds[i-1], bounds[i]]
    to partition i — Spark's convention (``lteq`` binary search).
    """
    keys = np.asarray(keys)
    if len(bounds) == 0:
        return np.zeros(len(keys), dtype=np.int64)
    return np.searchsorted(bounds, keys, side="left").astype(np.int64)
