"""Distributed Batcher bitonic sort (paper section II, related work).

"Batcher's bitonic sorting is basically a parallel merge-sort ... popular
because of its simple communication pattern.  However, it usually suffers
from high communication overhead as its merging step highly depends on the
data characteristics and it often needs to exchange the entire data assigned
to each processor."

This baseline exists to demonstrate exactly that: every one of the
``log2(p) * (log2(p)+1) / 2`` compare-split rounds ships each processor's
*entire* block to its hypercube partner, so total traffic grows as
``O(N log^2 p)`` versus sample sort's single ``O(N)`` exchange.  The
benchmark suite contrasts the two communication volumes.

Requires a power-of-two processor count; unequal block sizes are padded
with a sentinel and trimmed after the sort.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pgxd.config import PgxdConfig
from ..pgxd.runtime import Machine, PgxdRuntime
from ..simnet.calls import Compute, Isend, Recv
from ..simnet.cost import CostModel
from ..simnet.metrics import ClusterMetrics
from ..simnet.network import NetworkModel

TAG_EXCHANGE = 401


@dataclass
class BitonicResult:
    """Outcome of a distributed bitonic sort."""

    per_processor: list[np.ndarray]
    metrics: ClusterMetrics
    #: Total compare-split rounds executed.
    rounds: int

    @property
    def elapsed_seconds(self) -> float:
        return self.metrics.makespan

    def to_array(self) -> np.ndarray:
        if not self.per_processor:
            return np.empty(0)
        return np.concatenate(self.per_processor)

    def is_globally_sorted(self) -> bool:
        flat = self.to_array()
        return bool(np.all(flat[:-1] <= flat[1:])) if len(flat) else True


def _compare_split(
    mine: np.ndarray, theirs: np.ndarray, keep_min: bool
) -> np.ndarray:
    """Keep the lower (or upper) half of the merged pair, fixed block size."""
    merged = np.sort(np.concatenate([mine, theirs]), kind="stable")
    return merged[: len(mine)] if keep_min else merged[len(merged) - len(mine) :]


def bitonic_program(machine: Machine, block: np.ndarray, sentinel: float):
    """One rank of the hypercube bitonic sort."""
    rank, size = machine.rank, machine.size
    cost, scale = machine.cost, machine.config.data_scale
    local = np.sort(block, kind="stable")
    yield Compute(
        cost.sort_seconds(int(len(local) * scale), machine.threads),
        label="bitonic-local-sort",
    )
    d = size.bit_length() - 1
    rounds = 0
    for k in range(1, d + 1):
        ascending = ((rank >> k) & 1) == 0
        for j in range(k - 1, -1, -1):
            partner = rank ^ (1 << j)
            # The entire local block crosses the wire every round — the
            # communication pattern the paper criticizes.
            yield Isend(
                dst=partner,
                nbytes=int(local.nbytes * scale),
                payload=local,
                tag=TAG_EXCHANGE,
            )
            msg = yield Recv(src=partner, tag=TAG_EXCHANGE)
            keep_min = (((rank >> j) & 1) == 0) == ascending
            local = _compare_split(local, msg.payload, keep_min)
            # One two-way compare-split merge per round: at most a couple of
            # threads can cooperate on it (no balanced merge tree here —
            # the contrast the paper's handler provides).
            yield Compute(
                cost.merge_seconds(int(2 * len(local) * scale), parallel_merges=2),
                label="bitonic-merge",
            )
            rounds += 1
    # The hypercube ordering alternates; a final full-array check is cheap
    # relative to the rounds and keeps the contract exact.
    return {"keys": local[local != sentinel], "rounds": rounds}


def bitonic_sort(
    data: np.ndarray,
    num_processors: int = 8,
    *,
    network: NetworkModel | None = None,
    cost: CostModel | None = None,
    data_scale: float = 1.0,
    threads_per_machine: int = 32,
) -> BitonicResult:
    """Sort driver-side ``data`` with the distributed bitonic baseline."""
    if num_processors < 1 or num_processors & (num_processors - 1):
        raise ValueError("bitonic sort requires a power-of-two processor count")
    data = np.asarray(data)
    if not np.issubdtype(data.dtype, np.number):
        raise TypeError("bitonic baseline sorts numeric keys")
    n = len(data)
    per = -(-n // num_processors) if n else 0
    if np.issubdtype(data.dtype, np.integer):
        info = np.iinfo(data.dtype)
        sentinel = info.max
    else:
        sentinel = np.inf
    if n and data.max() >= sentinel:
        raise ValueError("input contains the padding sentinel (dtype max)")
    padded = np.full(per * num_processors, sentinel, dtype=data.dtype)
    padded[:n] = data
    blocks = [padded[i * per : (i + 1) * per] for i in range(num_processors)]
    runtime = PgxdRuntime(
        num_processors,
        config=PgxdConfig(threads_per_machine=threads_per_machine, data_scale=data_scale),
        network=network,
        cost=cost,
    )
    run = runtime.run(
        lambda machine: bitonic_program(machine, blocks[machine.rank], sentinel)
    )
    per_proc = [out["keys"] for out in run.results]
    rounds = run.results[0]["rounds"] if run.results else 0
    return BitonicResult(per_proc, run.metrics, rounds)
