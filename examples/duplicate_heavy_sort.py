"""The investigator at work: load balance on duplicate-heavy data.

The paper's central contribution is keeping processor loads balanced when
the dataset contains many duplicated entries (Figure 3, Table II).  This
example sorts a right-skewed dataset — ~80% of all entries share one value
— with and without the investigator, and prints the per-processor loads.

Run:  python examples/duplicate_heavy_sort.py
"""

import numpy as np

from repro import DistributedSorter
from repro.workloads import duplication_ratio, right_skewed

P = 10
data = right_skewed(1 << 20, seed=7)
print(f"dataset: {len(data):,} keys, duplication ratio {duplication_ratio(data):.4f}")
top_value, top_count = np.unique(data, return_counts=True)
i = np.argmax(top_count)
print(f"most frequent value {top_value[i]} holds {top_count[i] / len(data):.1%} of all entries\n")


def report(label: str, **options) -> None:
    sorter = DistributedSorter(num_processors=P, **options)
    result = sorter.sort(data)
    assert result.is_globally_sorted()
    ratios = ", ".join(f"{r:.3%}" for r in result.ratios())
    print(f"{label}")
    print(f"  per-processor share: {ratios}")
    print(f"  imbalance (max/mean): {result.imbalance():.2f}")
    print(f"  min/max load spread:  {result.load_spread():,} keys")
    print(f"  virtual time:         {result.elapsed_seconds * 1e3:.2f} ms\n")


# Figure 3b: plain binary search piles the tied range onto one processor.
report("WITHOUT investigator (Figure 3b)", investigator=False)

# Figure 3c: duplicated splitters divide the tied range equally.
report("WITH investigator (Figure 3c)")

# Table II's money shot: the tied block splits into exactly equal ratios —
# compare the repeated per-processor share above with the paper's
# "exact equal sized 9.998% for each data on the processors 2-9".
