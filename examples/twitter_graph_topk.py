"""Graph analytics on sorted data: the paper's motivating PGX.D use case.

"By adding this distributed sorting method in PGX.D, user can also easily
sort data of their multiple graphs with different types and implement more
analysis on them, such as retrieving top values from their graph data or
implementing binary search on the sorted data."

This example builds a Twitter-shaped R-MAT graph, loads it into the
simulated PGX.D runtime (block partition, ghost-node selection, CSR build,
edge chunking), sorts two graph-derived datasets *simultaneously*, and runs
top-k / binary-search analytics on the results.

Run:  python examples/twitter_graph_topk.py
"""

import numpy as np

from repro import DistributedSorter
from repro.pgxd import PgxdRuntime, chunk_edges, chunk_imbalance, vertex_chunk_imbalance
from repro.workloads import synthetic_twitter

P = 8
ds = synthetic_twitter(scale=13, edge_factor=8, seed=1)
print(f"graph: {ds.num_vertices:,} vertices, {ds.num_edges:,} edges")

# --- Load the graph into the PGX.D runtime ---------------------------------
runtime = PgxdRuntime(P)
local_graphs, ghosts, load_run = runtime.load_graph(ds.src, ds.dst, ds.num_vertices)
print(
    f"loaded in {load_run.makespan * 1e3:.2f} ms virtual; ghost nodes cut "
    f"{ghosts.reduction:.1%} of {ghosts.crossing_edges_before:,} crossing edges"
)
g0 = local_graphs[0]
chunks = chunk_edges(g0, 1024)
print(
    f"machine 0: {g0.num_vertices:,} vertices / {g0.num_edges:,} edges in "
    f"{len(chunks)} chunks (edge-chunk imbalance {chunk_imbalance(chunks):.2f} "
    f"vs vertex-block {vertex_chunk_imbalance(g0, len(chunks)):.2f})"
)

# --- Sort two graph datasets simultaneously --------------------------------
degrees = ds.degree_keys()  # per-edge source degree: power-law duplicates
properties = ds.edge_keys()  # per-edge property: uniform over [0, 95]
sorter = DistributedSorter(num_processors=P)
deg_result, prop_result = sorter.sort_multi([degrees, properties])
print(f"\nsorted {len(degrees):,}-key degree data and property data together")
print(f"combined virtual time: {deg_result.elapsed_seconds * 1e3:.2f} ms")

# --- Analytics on the sorted data -------------------------------------------
top = deg_result.top_k(5)
print(f"5 largest source degrees: {top.astype(int).tolist()}")
hubs_cut = int(np.searchsorted(deg_result.to_array(), 100))
share = 1 - hubs_cut / len(degrees)
print(f"edges from vertices with degree >= 100: {share:.1%}")

proc, local = prop_result.searchsorted(47.5)
rank = prop_result.global_index(proc, local)
print(f"first property >= 47.5 sits on processor {proc} (global rank {rank:,})")
print(f"property ranges per processor:")
for i, rng in enumerate(prop_result.ranges()):
    if rng:
        print(f"  proc{i}: {rng[0]:6.2f} .. {rng[1]:6.2f}")
