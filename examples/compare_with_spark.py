"""Reproduce the headline: PGX.D sorts 2x-3x faster than Spark.

Sorts one billion *modeled* keys (2^18 real keys, costs charged at paper
scale — see DESIGN.md on data_scale) with both engines across the paper's
processor sweep and prints times, the ratio, and Spark's stage breakdown.

Run:  python examples/compare_with_spark.py
"""

import numpy as np

from repro import DistributedSorter
from repro.baselines import spark_sort_by_key
from repro.workloads import uniform

MODELED_KEYS = 1_000_000_000
REAL_KEYS = 1 << 18

data = uniform(REAL_KEYS, seed=0, value_range=1 << 20)
scale = MODELED_KEYS / REAL_KEYS

print(f"{'procs':>5s} {'pgxd [s]':>10s} {'spark [s]':>10s} {'spark/pgxd':>11s}")
for p in (8, 16, 24, 32, 40, 52):
    pgxd = DistributedSorter(num_processors=p, data_scale=scale).sort(data)
    spark = spark_sort_by_key(data, num_executors=p, data_scale=scale)
    assert pgxd.is_globally_sorted() and spark.is_globally_sorted()
    assert np.array_equal(pgxd.to_array(), spark.to_array())
    ratio = spark.elapsed_seconds / pgxd.elapsed_seconds
    print(
        f"{p:5d} {pgxd.elapsed_seconds:10.2f} {spark.elapsed_seconds:10.2f} "
        f"{ratio:10.2f}x"
    )

print("\nwhere Spark's time goes (p=16):")
spark = spark_sort_by_key(data, num_executors=16, data_scale=scale)
for stage, secs in spark.stage_seconds.items():
    print(f"  {stage:<13s} {secs:6.2f} s")

print("\nwhere PGX.D's time goes (p=16):")
pgxd = DistributedSorter(num_processors=16, data_scale=scale).sort(data)
for step, secs in pgxd.step_breakdown().items():
    print(f"  {step:<13s} {secs:6.2f} s")
