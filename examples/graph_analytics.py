"""The full PGX.D story: graph analytics feeding the distributed sort.

Runs distributed PageRank on a Twitter-shaped graph (validated against
networkx in the test suite), then uses the paper's distributed sort to rank
the vertices — "retrieving top values from their graph data" — and shows
the ghost-node communication savings along the way.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import DistributedSorter
from repro.pgxd import PgxdConfig, PgxdRuntime
from repro.pgxd.algorithms import distributed_bfs, distributed_pagerank
from repro.workloads import rmat_edges

P = 8
src, dst, n = rmat_edges(scale=12, edge_factor=8, seed=9)
print(f"graph: {n:,} vertices, {len(src):,} edges on {P} simulated machines")

# --- PageRank, with and without ghost nodes ---------------------------------
runtime = PgxdRuntime(P, config=PgxdConfig(ghost_node_budget=128))
pr = distributed_pagerank(runtime, src, dst, n, iterations=25)
pr_no_ghosts = distributed_pagerank(runtime, src, dst, n, iterations=25, use_ghosts=False)
print(f"\npagerank converged; rank mass = {pr.ranks.sum():.6f}")
print(
    f"remote traffic: {pr.remote_bytes / 1e6:.1f} MB with ghosts vs "
    f"{pr_no_ghosts.remote_bytes / 1e6:.1f} MB without "
    f"({1 - pr.remote_bytes / pr_no_ghosts.remote_bytes:.0%} saved)"
)

# --- Sort the ranks with the paper's sort, get the top vertices --------------
sorter = DistributedSorter(num_processors=P)
result, columns = sorter.sort_with_values(
    pr.ranks, {"vertex": np.arange(n, dtype=np.int64)}
)
top = 5
print(f"\ntop-{top} vertices by PageRank (via the distributed sort):")
degrees = np.bincount(src, minlength=n)
for rank_value, vertex in zip(result.top_k(top)[::-1], columns["vertex"][-top:][::-1]):
    print(f"  vertex {int(vertex):6d}  rank {rank_value:.6f}  out-degree {degrees[vertex]}")

# --- BFS reachability from the top hub ---------------------------------------
hub = int(columns["vertex"][-1])
bfs = distributed_bfs(runtime, src, dst, n, root=hub)
reached = int(np.sum(bfs.distances >= 0))
print(f"\nBFS from hub {hub}: {reached:,}/{n:,} vertices reachable in {bfs.levels} levels")
print(f"virtual time of the whole PageRank run: {pr.metrics.makespan * 1e3:.2f} ms")
