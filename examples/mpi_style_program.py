"""Writing your own cluster programs with the mpi4py-style facade.

The simulator isn't only for the paper's sort: any MPI-flavoured program
runs on the virtual cluster with `SimComm` + `mpi_run`, giving deterministic
timing, traffic accounting, and a drop-in path to real mpi4py later.

This example implements a distributed odd-even transposition sort — a third
sorting algorithm in ~30 lines — and cross-checks it against the library's
sample sort.

Run:  python examples/mpi_style_program.py
"""

import numpy as np

from repro import distributed_sort
from repro.simnet import Compute
from repro.simnet.mpi import mpi_run

P = 8
rng = np.random.default_rng(5)
data = rng.integers(0, 100_000, 80_000)
blocks = np.array_split(data, P)


def odd_even_sort(comm):
    """Block odd-even transposition: p phases of neighbour compare-splits."""
    local = np.sort(blocks[comm.rank])
    yield Compute(len(local) * 20 / 60e6)  # local sort cost
    for phase in range(comm.size):
        if phase % 2 == 0:
            partner = comm.rank + 1 if comm.rank % 2 == 0 else comm.rank - 1
        else:
            partner = comm.rank + 1 if comm.rank % 2 == 1 else comm.rank - 1
        if not 0 <= partner < comm.size:
            yield from comm.barrier()
            continue
        theirs = yield from comm.sendrecv(local, dest=partner, source=partner)
        merged = np.sort(np.concatenate([local, theirs]))
        # Lower rank keeps the small half, higher rank the large half.
        local = merged[: len(local)] if comm.rank < partner else merged[len(merged) - len(local):]
        yield Compute(len(merged) / 250e6)  # merge cost
        yield from comm.barrier()
    return local


results, metrics = mpi_run(P, odd_even_sort)
flat = np.concatenate(results)
assert np.array_equal(flat, np.sort(data)), "odd-even sort disagrees!"
print(f"odd-even transposition sort: correct over {P} ranks")
print(f"  virtual time: {metrics.makespan * 1e3:.3f} ms")
print(f"  wire traffic: {metrics.remote_bytes / 1e6:.1f} MB in {metrics.messages} messages")

reference = distributed_sort(data, num_processors=P)
print(f"\nlibrary sample sort on the same data:")
print(f"  virtual time: {reference.elapsed_seconds * 1e3:.3f} ms")
print(f"  wire traffic: {reference.metrics.remote_bytes / 1e6:.1f} MB")
print(
    f"\nsample sort moves each key once; odd-even moves blocks {P} times "
    f"({metrics.remote_bytes / max(reference.metrics.remote_bytes, 1):.1f}x the bytes)."
)
