"""Quickstart: sort data on a simulated PGX.D cluster and query the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DistributedSorter, distributed_sort

rng = np.random.default_rng(42)
data = rng.integers(0, 1_000_000, 1 << 20)

# One-shot API: sort across 8 simulated machines with 32 worker threads
# each (the paper's per-machine parallelism).
result = distributed_sort(data, num_processors=8)

print(f"globally sorted: {result.is_globally_sorted()}")
print(f"virtual cluster time: {result.elapsed_seconds * 1e3:.2f} ms")
print(f"keys per processor: {result.counts().tolist()}")
print(f"load imbalance (max/mean): {result.imbalance():.3f}")

# Per-step breakdown (the paper's Figure 7 view).
for step, seconds in result.step_breakdown().items():
    print(f"  {step:<14s} {seconds * 1e3:8.3f} ms")

# The library APIs the paper advertises on the sorted data:
value = int(data[123])
proc, local = result.searchsorted(value)
print(f"\nbinary search for {value}: processor {proc}, local index {local}")
print(f"global rank: {result.global_index(proc, local)}")
print(f"top-5 values: {result.top_k(5).tolist()}")

# Provenance: where did the smallest key live before the sort?
origin_proc, origin_idx = result.origin_of(0, 0)
print(f"smallest key came from processor {origin_proc}, index {origin_idx}")

# Payload columns ride along via provenance ("sort multiple data
# simultaneously"): reorder a second array into key order without
# re-sorting.
payload = rng.random(len(data))
sorter = DistributedSorter(num_processors=8)
res2, columns = sorter.sort_with_values(data, {"weight": payload})
expected = payload[np.argsort(data, kind="stable")]
assert np.array_equal(columns["weight"], expected)
print("payload column reordered consistently with the keys")
