"""Streaming sorts through a persistent worker pool.

A service that sorts many datasets should not pay process spawn, shared-
memory mapping, and splitter sampling for every request.  ``SorterPool``
keeps one generation of rank processes parked between jobs: the shm arena
segments stay mapped on both sides of the process boundary, and the exact
splitter cache reuses splitters whenever a job's sample fingerprint
matches an earlier one — bit-identically, verified by a cheap histogram
pass.

Run:  python examples/streaming_sort_jobs.py
"""

import time

import numpy as np

from repro import DistributedSorter

WORKERS = 2
N_KEYS = 30_000
rng = np.random.default_rng(20260809)

# A mixed stream: the three recurring shapes a graph workload produces.
# The second cycle re-issues the first cycle's datasets, which is exactly
# the recurring-epoch pattern the splitter cache exists for.
shapes = {
    "uniform": rng.integers(0, 1 << 40, N_KEYS).astype(np.int64),
    "duplicate_heavy": rng.integers(0, 500, N_KEYS).astype(np.int64),
    "near_sorted": np.sort(rng.integers(0, 1 << 40, N_KEYS).astype(np.int64)),
}
stream = [(name, shapes[name]) for name in shapes] * 2

sorter = DistributedSorter(num_processors=WORKERS, backend="process")
with sorter.pool() as pool:
    print(f"streaming {len(stream)} jobs through {WORKERS} pooled workers\n")
    for i, (name, data) in enumerate(stream):
        start = time.perf_counter()
        result = pool.sort(data)
        latency = time.perf_counter() - start
        verdict = pool.last_run.splitter_cache
        assert result.is_globally_sorted()
        print(
            f"job {i}: {name:<16s} {latency * 1e3:7.1f} ms   "
            f"splitter cache: {verdict}"
        )
    stats = pool.stats
    cache = stats["splitter_cache"]

print(
    f"\npool served {stats['jobs_completed']} jobs with "
    f"{stats['pool_spawns']} spawn(s) ({stats['respawns']} respawn(s))"
)
print(
    f"splitter cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
    f"{cache['cold']} cold, {cache['fallbacks']} fallback(s)"
)

# One-liner for batch callers: sort_many streams a whole list of datasets
# through a single pool (simnet backends get the same API).
results = DistributedSorter(num_processors=WORKERS, backend="process").sort_many(
    [shapes["uniform"], shapes["duplicate_heavy"]]
)
print(f"sort_many: {len(results)} results, all sorted: "
      f"{all(r.is_globally_sorted() for r in results)}")
