"""Why X = 256KB/p: tuning the sampling budget (Figures 9 and 10).

Sweeps the sample-size factor around the paper's choice and shows the
trade-off it resolves: tiny samples give bad splitters (imbalance, extra
communication), oversized samples pay more at the Master for no balance
gain.

Run:  python examples/sample_size_tuning.py
"""

from repro import DistributedSorter
from repro.pgxd import READ_BUFFER_BYTES
from repro.workloads import synthetic_twitter

P = 16
ds = synthetic_twitter(scale=14, edge_factor=8, seed=3)
keys = ds.edge_keys()
scale = 1_468_365_182 / len(keys)  # model the paper's Twitter edge count

budget = READ_BUFFER_BYTES // P
print(f"X = 256KB / {P} processors = {budget:,} bytes "
      f"({budget // keys.dtype.itemsize:,} samples per processor)\n")
print(f"{'factor':>8s} {'samples':>8s} {'total [s]':>10s} {'comm [s]':>9s} "
      f"{'imbalance':>10s} {'spread':>12s}")

for factor in (0.004, 0.04, 0.4, 1.0, 1.004, 1.04, 1.4):
    sorter = DistributedSorter(
        num_processors=P, data_scale=scale, sample_factor=factor
    )
    result = sorter.sort(keys)
    assert result.is_globally_sorted()
    samples = max(int(budget * factor) // keys.dtype.itemsize, 1)
    print(
        f"{factor:>7}X {samples:8,d} {result.elapsed_seconds:10.3f} "
        f"{result.communication_seconds():9.3f} {result.imbalance():10.3f} "
        f"{int(result.load_spread() * scale):12,d}"
    )

print(
    "\nThe paper picks X: one read buffer of samples lands on the Master in "
    "a single message,\nlarge enough for balanced splitters, small enough "
    "to keep communication flat."
)
