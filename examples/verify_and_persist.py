"""Operational tooling: verify, persist, snapshot, and diff sort results.

A production sorting service needs more than a sort: this example runs the
distributed verification program over a result (in-simulation, no driver
regather), saves the result to disk and reloads it for later analytics, and
shows the JSON-snapshot regression flow used to guard the cost model.

Run:  python examples/verify_and_persist.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import DistributedSorter, SortResult
from repro.analysis.regression import compare
from repro.core.verify import summarize_input, verify_distributed
from repro.workloads import exponential

data = exponential(1 << 19, seed=3)
reference = summarize_input(data)

result = DistributedSorter(num_processors=10).sort(data)

# --- In-simulation distributed verification ---------------------------------
report = verify_distributed(result.per_processor)
print(f"locally sorted on every machine: {report.locally_sorted}")
print(f"boundaries ordered across machines: {report.boundaries_ordered}")
print(f"multiset matches the input (count/checksum/min/max): "
      f"{report.matches_input(reference)}")

# --- Persist and reload -------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "sorted.npz"
    result.save(path)
    loaded = SortResult.load(path)
    print(f"\nsaved {path.stat().st_size / 1e6:.1f} MB; reloaded "
          f"{loaded.total_keys:,} keys across {loaded.num_processors} processors")
    # Analytics work on the reloaded result without re-sorting.
    q = loaded.quantiles([0.5, 0.9, 0.99]).tolist()
    print(f"median / p90 / p99 keys: {q}")
    print(f"multiplicity of key 0: {loaded.count(0):,} "
          f"(dominant duplicated value of the exponential dataset)")

# --- Snapshot + regression diff -----------------------------------------------
snapshot = {
    "ratios": result.ratios().tolist(),
    "imbalance": result.imbalance(),
    "elapsed": result.elapsed_seconds,
}
drifted = dict(snapshot, elapsed=snapshot["elapsed"] * 1.5)
clean = compare(snapshot, json.loads(json.dumps(snapshot)))
dirty = compare(snapshot, drifted, tolerance=0.1)
print(f"\nregression diff against identical snapshot: ok={clean.ok}")
print(f"regression diff after a 50% timing drift:    ok={dirty.ok}")
for d in dirty.drifts:
    print(f"  flagged: {d}")
